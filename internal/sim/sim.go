// Package sim is a deterministic simulator for the read/write shared-memory
// model of the paper (§2.2–2.3): an algorithm is a set of n deterministic
// automata; a run is driven by a schedule (a sequence of process ids); in
// each of its steps a process reads or writes one shared register and
// updates its local state; local computation is free.
//
// Processes come in two interchangeable forms:
//
//   - Algorithm: ordinary Go functions against the Env interface. Each
//     process runs as a coroutine: every Read or Write blocks until the
//     runner grants a step according to the schedule, the runner performs
//     the memory operation centrally, and the process then computes locally
//     until it posts its next operation. The runner waits for that next
//     posting (or for process termination) before returning from Step.
//
//   - Machine: an explicit automaton (see machine.go) that, given the
//     result of its previous operation, returns its next request. The
//     runner executes machines by direct dispatch — plain function calls,
//     no goroutine, no channel — which is an order of magnitude faster per
//     step and is the path the campaign engine uses for hot algorithms.
//
// In both modes at most one process executes at any instant once stepping
// begins, runs are bit-for-bit reproducible, and the harness may safely
// inspect any state the algorithm shares with it between Step calls.
//
// One caveat follows from the coroutines' lazy start: algorithm code that
// runs before the process's first Read or Write (its initialization)
// executes concurrently with other processes' steps. Initialization may
// create registers (Env.Reg is thread-safe) and build local state, but must
// not touch state shared with the harness or with other processes; perform
// one register operation first if such access is needed. Machine factories
// have no such caveat: they run sequentially on the constructing goroutine.
//
// Crashes are represented exactly as in the paper: a schedule simply stops
// containing the process. Scheduling a process whose function has returned
// is a no-op step.
package sim

import (
	"fmt"
	"sync"

	"github.com/settimeliness/settimeliness/internal/procset"
	"github.com/settimeliness/settimeliness/internal/sched"
)

// Ref is an opaque handle to a shared register. Obtain handles with Env.Reg
// or Registry.Reg; handles are shared across processes by name.
type Ref interface {
	// Name returns the register's name.
	Name() string
}

// Env is the programming interface coroutine algorithms run against. Reg
// does not cost a step (naming registers is part of the automaton's
// structure); Read and Write cost exactly one step each and block until the
// schedule grants it.
//
// Both the deterministic runtime in this package and the real-time runtime
// in internal/live implement Env, so algorithm code runs unmodified on both.
type Env interface {
	// Self returns the identifier of the executing process (1..n).
	Self() procset.ID
	// N returns the system size.
	N() int
	// Reg returns the shared register with the given name, creating it with
	// initial value nil if needed.
	Reg(name string) Ref
	// Read returns the current value of the register; nil if never written.
	Read(r Ref) any
	// Write stores v in the register. Values must be treated as immutable
	// once written.
	Write(r Ref, v any)
}

// Algorithm is the code run by one process. The function may return (the
// automaton halts) or loop forever; returning is not a crash.
type Algorithm func(env Env)

// OpKind classifies what happened during a step.
type OpKind int

// Step kinds.
const (
	OpRead OpKind = iota + 1
	OpWrite
	// OpNoop is a step granted to a process whose automaton has halted.
	OpNoop
	// OpSend hands one message to the attached Network (see net.go),
	// addressed to Op.Dest. Machine-mode runners with Config.Network only.
	OpSend
	// OpRecv asks the attached Network for the next deliverable message; the
	// automaton's next prev is a *Message, or nil when nothing was ready.
	OpRecv
)

// String returns a short name for the kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpNoop:
		return "noop"
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

func badOpKind(k OpKind) string {
	return fmt.Sprintf("sim: unknown op kind %v", k)
}

// StepInfo describes one executed step, delivered to observers.
type StepInfo struct {
	// Index is the 0-based position of the step in the run's schedule.
	Index int
	// Proc is the process that took the step.
	Proc procset.ID
	// Kind says whether the step read, wrote, or was a no-op.
	Kind OpKind
	// Reg is the register name for read/write steps.
	Reg string
	// Value is the value read or written; for send steps the payload sent,
	// for recv steps the payload delivered (nil when nothing was ready).
	Value any
	// Peer is the other endpoint of a message step: the destination for
	// OpSend, the sender for a delivering OpRecv, 0 otherwise.
	Peer procset.ID
	// Fault is the fault class the process was tagged with (see
	// Runner.SetFaultClass); FaultHonest on untagged runners, so streams
	// from fault-free runs are unchanged by the field's existence.
	Fault FaultClass
}

type opRequest struct {
	kind  OpKind
	reg   *register
	value any // value to write for OpWrite
}

// RegID is the dense identifier of an interned register: slot i holds the
// i-th register interned by the runner's memory, so consumers can attach
// per-register metadata in a plain slice instead of a name-keyed map (the
// directed-run observers do exactly that; see consensus.Table). Identifiers
// are stable for the lifetime of the runner, including across Reset. In
// machine mode the interning order is the (deterministic) construction
// order; in coroutine mode processes intern concurrently during their
// initialization, so ids are stable within a runner but not across runners.
//
// In machine mode the id is also the index into the memory's
// struct-of-arrays register plane: values, write-sequence counters, and
// last-writer metadata live in dense parallel arrays rather than in the
// register objects, so the stepping loops and the snapshot scan chain walk
// contiguous memory instead of pointer-chasing interned slot objects.
type RegID int

// register is one interned shared register handle. In coroutine mode it also
// carries the register's value (touched only by the stepping goroutine —
// processes go through the runner for every memory operation — so value
// access is lock-free). In machine mode values live in the memory's dense
// value array instead (see memory.values) and the boxed field stays nil.
type register struct {
	name  string
	id    RegID
	value any
}

func (r *register) Name() string { return r.name }

// Recycler is runner-scoped state that vends reusable objects to machines
// (arenas, lease pools). ResetRecycler is invoked by Runner.Reset after
// register values are cleared and before the machine factories run again: at
// that point no machine holds any vended object, so the recycler may reclaim
// everything it ever handed out in bulk — including objects that were held
// by crashed processes or by scans a mid-run stop left in flight.
type Recycler interface {
	ResetRecycler()
}

// RecyclerHost is implemented by the Registry a machine factory receives
// when the runner permits value recycling. Machines that can reuse the
// memory behind values they write (see internal/snapshot's arena) obtain
// their runner-scoped recycler through it; on runners where it is absent or
// returns nil they fall back to allocating per write.
type RecyclerHost interface {
	// Recycler returns the runner-scoped shared value under key, building it
	// with create on first use. It returns nil when value recycling is
	// disabled for this runner — an observer is attached, and observers may
	// retain written values beyond the model's reuse horizon.
	Recycler(key any, create func() any) any

	// TakeValue removes and returns a register's current value without
	// costing a step: the memory-plane free() of the simulated world's
	// infinite register space. The caller must own the knowledge that the
	// register is dead under its current use — no automaton will read or
	// write it again before it is deliberately reused as a fresh register
	// (a reset register reads as nil, indistinguishable from one never
	// written). The BG simulation recycles the register groups of dead safe
	// agreement objects this way. Stepping-goroutine only; panics when the
	// runner does not permit recycling.
	TakeValue(r Ref) any
}

// memory is the shared register namespace. Registers are interned: each
// name maps to one slot for the lifetime of the runner, including across
// Reset (values revert to nil; a nil-valued register is indistinguishable
// from an absent one, since reads of unwritten registers return nil).
//
// The mutex guards interning only — coroutine processes may create
// registers concurrently during their initialization phase (before their
// first step). The stepping path never takes it: register values are plain
// fields accessed only by the stepping goroutine, and the register pointers
// it dereferences arrive over the processes' request channels (coroutine
// mode) or were created sequentially at construction (machine mode), so the
// necessary happens-before edges exist without a lock.
type memory struct {
	mu     sync.Mutex
	byName map[string]*register
	slots  []*register

	// The struct-of-arrays register plane, machine mode only: parallel dense
	// arrays indexed by RegID. values[id] is the register's current value;
	// writeSeqs[id] counts write steps since construction or the last Reset;
	// lastWriter[id] is the most recent writer (0 = never written). Machine
	// mode interns only on the stepping/constructing goroutine (factories,
	// mid-run Rebind), so the arrays may grow between steps without a lock;
	// coroutine mode interns concurrently during process initialization and
	// therefore keeps values boxed in the register objects — a growable dense
	// array would race with the stepping goroutine there.
	dense      bool
	values     []any
	writeSeqs  []uint32
	lastWriter []procset.ID

	// recycleOK gates Recycler: set once at construction (machine mode, no
	// observer) and never changed. Recyclers are only touched from machine
	// factories and the stepping path, both serial, so no lock is needed.
	recycleOK bool
	recyclers map[any]any
}

func newMemory(dense bool) *memory {
	return &memory{byName: make(map[string]*register), dense: dense}
}

// Recycler implements RecyclerHost for machine factories.
func (m *memory) Recycler(key any, create func() any) any {
	if !m.recycleOK {
		return nil
	}
	if m.recyclers == nil {
		m.recyclers = make(map[any]any)
	}
	v, ok := m.recyclers[key]
	if !ok {
		v = create()
		m.recyclers[key] = v
	}
	return v
}

// TakeValue implements RecyclerHost. Stepping-goroutine only: register
// values are owned by the stepping path. Recycling implies machine mode, so
// the value lives in the dense plane.
func (m *memory) TakeValue(r Ref) any {
	if !m.recycleOK {
		panic("sim: TakeValue on a runner that does not permit recycling")
	}
	id := mustRegister(r).id
	v := m.values[id]
	m.values[id] = nil
	return v
}

// resetRecyclers bulk-resets every runner-scoped recycler. Reset-path only.
func (m *memory) resetRecyclers() {
	for _, v := range m.recyclers {
		if r, ok := v.(Recycler); ok {
			r.ResetRecycler()
		}
	}
}

// Reg implements Registry for machine factories.
func (m *memory) Reg(name string) Ref { return m.reg(name) }

func (m *memory) reg(name string) *register {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.byName[name]
	if !ok {
		r = &register{name: name, id: RegID(len(m.slots))}
		m.byName[name] = r
		m.slots = append(m.slots, r)
		if m.dense {
			m.values = append(m.values, nil)
			m.writeSeqs = append(m.writeSeqs, 0)
			m.lastWriter = append(m.lastWriter, 0)
		}
	}
	return r
}

// nameOf returns the name of the interned register with the given id.
func (m *memory) nameOf(id RegID) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id < 0 || int(id) >= len(m.slots) {
		panic(fmt.Sprintf("sim: register id %d out of range [0,%d)", id, len(m.slots)))
	}
	return m.slots[id].name
}

// idOf returns the id of the interned register with the given name.
func (m *memory) idOf(name string) RegID {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.byName[name]
	if !ok {
		panic(fmt.Sprintf("sim: register %q was never interned", name))
	}
	return r.id
}

// read returns the register's current value, on whichever plane the runner
// keeps it. Stepping-goroutine only. The machine-mode hot loops index the
// dense arrays directly instead of calling this.
func (m *memory) read(r *register) any {
	if m.dense {
		return m.values[r.id]
	}
	return r.value
}

// write stores v in the register. Stepping-goroutine only; the machine-mode
// hot loops store into the dense arrays directly instead of calling this.
func (m *memory) write(r *register, v any) {
	if m.dense {
		m.values[r.id] = v
		return
	}
	r.value = v
}

// size returns the number of interned registers (diagnostics).
func (m *memory) size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.slots)
}

// resetValues reverts every interned register to the unwritten state. It
// must only run while no process goroutine is live (Reset guarantees this),
// but takes the lock anyway — it is far from the stepping path.
func (m *memory) resetValues() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range m.slots {
		r.value = nil
	}
	clear(m.values)
	clear(m.writeSeqs)
	clear(m.lastWriter)
}

var errKilled = fmt.Errorf("sim: runner closed")

// proc is the runner-side state of one process. The coroutine fields are
// used when the runner was built with Config.Algorithm, the machine fields
// with Config.Machine.
type proc struct {
	id        procset.ID
	isHalted  bool
	stepCount int
	// fault is the introspection tag of fault.go: set by directors that
	// crash or corrupt the process, cleared by Reset, consulted by nothing
	// on the stepping paths.
	fault FaultClass

	// Coroutine mode.
	req    chan opRequest
	resp   chan any
	halted chan struct{} // closed when the algorithm function returns
	// pending holds a request already received from the process but not yet
	// executed; it is owned by the runner goroutine.
	pending *opRequest

	// Machine (direct-dispatch) mode. The pending request is held in
	// resolved form — kind, concrete register, write value — so the hot
	// loops neither copy an Op struct per step nor repeat the Ref type
	// assertion (valid when started && !isHalted). ptrMachine is machine's
	// PtrMachine form when it implements one, resolved once at start; the
	// stepping loops prefer it.
	machine    Machine
	ptrMachine PtrMachine
	nextKind   OpKind
	nextReg    *register
	nextRegID  RegID // nextReg.id, resolved once so the hot loops index the dense plane without the pointer chase
	nextValue  any
	nextDest   procset.ID // destination of a pending OpSend
	started    bool       // whether the machine's first request has been fetched
}

// procEnv implements Env for one coroutine process.
type procEnv struct {
	runner *Runner
	proc   *proc
}

func (e *procEnv) Self() procset.ID { return e.proc.id }
func (e *procEnv) N() int           { return e.runner.n }

func (e *procEnv) Reg(name string) Ref { return e.runner.mem.reg(name) }

func (e *procEnv) Read(r Ref) any {
	return e.do(opRequest{kind: OpRead, reg: mustRegister(r)})
}

func (e *procEnv) Write(r Ref, v any) {
	e.do(opRequest{kind: OpWrite, reg: mustRegister(r), value: v})
}

func mustRegister(r Ref) *register {
	reg, ok := r.(*register)
	if !ok {
		panic(fmt.Sprintf("sim: foreign Ref %T passed to simulator env", r))
	}
	return reg
}

func (e *procEnv) do(req opRequest) any {
	select {
	case e.proc.req <- req:
	case <-e.runner.kill:
		panic(errKilled)
	}
	select {
	case v := <-e.proc.resp:
		return v
	case <-e.runner.kill:
		panic(errKilled)
	}
}

// Runner drives an algorithm through explicit schedules.
type Runner struct {
	n     int
	mem   *memory
	procs []*proc
	kill  chan struct{}
	wg    sync.WaitGroup

	// Factories retained for Reset.
	algorithm func(procset.ID) Algorithm
	machine   func(procset.ID, Registry) Machine

	// net is the attached message substrate (nil on register-only runners);
	// see net.go. Machine mode only.
	net Network

	observer func(StepInfo)
	steps    int
	closed   bool

	// Observability plane (stats.go, flight.go): plain counters folded at
	// block boundaries, and the off-by-default last-K-steps ring. Neither
	// influences a single scheduling or memory decision.
	stats  statCounters
	flight *FlightRecorder

	// batchBuf is RunBatch's schedule prefetch buffer (see batch.go); kept
	// on the runner so the batched loop allocates nothing per call.
	batchBuf [batchBlock]procset.ID
}

// Config configures a Runner. Exactly one of Algorithm and Machine must be
// set; they select the coroutine and the direct-dispatch execution mode
// respectively.
type Config struct {
	// N is the system size (1..procset.MaxProcs).
	N int
	// Algorithm returns the coroutine code for each process. It is called
	// once per process id at construction (and again on Reset).
	Algorithm func(p procset.ID) Algorithm
	// Machine returns the direct-dispatch automaton for each process. The
	// factory is called once per process id at construction (and again on
	// Reset), sequentially on the constructing goroutine; regs interns the
	// machine's registers.
	Machine func(p procset.ID, regs Registry) Machine
	// Network, if non-nil, attaches a message substrate: machines may then
	// request OpSend/OpRecv steps (see net.go and SendOp/RecvOp). Machine
	// mode only — the coroutine Env has no message verbs, so NewRunner
	// rejects a Network on an Algorithm runner.
	Network Network
	// Observer, if non-nil, is invoked synchronously after every executed
	// step, including no-op steps of halted processes.
	Observer func(StepInfo)
	// NoRecycle disables value recycling even on observer-free machine
	// runners. A WriteMutator director (see directed.go) may replay a
	// register's previous value or retain an honest value as a future
	// corruption payload — both extend a written value's life beyond the
	// arena reuse horizon, exactly the hazard observers pose — so
	// mutator-equipped rigs must set it (RunDirected enforces this).
	// Honest rigs leave it false and keep the 0 allocs/op write path.
	NoRecycle bool
}

// NewRunner builds a runner ready for stepping. In coroutine mode it starts
// the per-process goroutines; in machine mode it invokes the machine
// factories sequentially. Callers must call Close to release any
// coroutines.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.N < 1 || cfg.N > procset.MaxProcs {
		return nil, fmt.Errorf("sim: n = %d out of range [1,%d]", cfg.N, procset.MaxProcs)
	}
	if (cfg.Algorithm == nil) == (cfg.Machine == nil) {
		return nil, fmt.Errorf("sim: exactly one of Config.Algorithm and Config.Machine is required")
	}
	if cfg.Network != nil && cfg.Machine == nil {
		return nil, fmt.Errorf("sim: Config.Network requires a direct-dispatch (Machine) runner")
	}
	r := &Runner{
		n:         cfg.N,
		mem:       newMemory(cfg.Machine != nil),
		procs:     make([]*proc, cfg.N),
		kill:      make(chan struct{}),
		algorithm: cfg.Algorithm,
		machine:   cfg.Machine,
		net:       cfg.Network,
		observer:  cfg.Observer,
	}
	// Value recycling is sound only when nothing can retain a written value
	// beyond the model's reuse horizon: an observer receives every written
	// value in its StepInfo and may legitimately keep it (the equivalence
	// tests do), so observed runners stay on the allocate-per-write path.
	// Coroutine runners do too — the reference implementations are kept
	// allocation-exact.
	r.mem.recycleOK = cfg.Machine != nil && cfg.Observer == nil && !cfg.NoRecycle
	for i := 0; i < cfg.N; i++ {
		p := &proc{id: procset.ID(i + 1)}
		r.procs[i] = p
		if err := r.start(p); err != nil {
			close(r.kill)
			r.wg.Wait()
			return nil, err
		}
	}
	return r, nil
}

// start (re)initializes one process from its factory: machine mode builds
// the automaton in place; coroutine mode spawns the process goroutine.
func (r *Runner) start(p *proc) error {
	if r.machine != nil {
		m := r.machine(p.id, r.mem)
		if m == nil {
			return fmt.Errorf("sim: Config.Machine returned nil for %v", p.id)
		}
		p.machine = m
		p.ptrMachine, _ = m.(PtrMachine)
		return nil
	}
	algo := r.algorithm(p.id)
	if algo == nil {
		return fmt.Errorf("sim: Config.Algorithm returned nil for %v", p.id)
	}
	p.req = make(chan opRequest)
	p.resp = make(chan any)
	p.halted = make(chan struct{})
	env := &procEnv{runner: r, proc: p}
	halted := p.halted
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer close(halted)
		defer func() {
			// Unwind cleanly when the runner shuts the simulation down.
			if rec := recover(); rec != nil && rec != errKilled {
				panic(rec)
			}
		}()
		algo(env)
	}()
	return nil
}

// Steps returns the number of steps executed so far.
func (r *Runner) Steps() int { return r.steps }

// Network returns the attached message substrate, or nil.
func (r *Runner) Network() Network { return r.net }

// Registers returns the number of shared registers interned so far. Interned
// registers survive Reset (with values reverted to nil), so on a reused
// runner this may exceed the count a fresh run would have created.
func (r *Runner) Registers() int { return r.mem.size() }

// RegName returns the name of the interned register with the given dense id
// (0 ≤ id < Registers()). Directed-run observers use it to build per-slot
// metadata tables once instead of parsing names per step.
func (r *Runner) RegName(id RegID) string { return r.mem.nameOf(id) }

// RegWrites returns the number of write steps the register with the given
// dense id has received since construction or the last Reset — the
// write-sequence counter of the struct-of-arrays register plane. Machine
// mode only; coroutine runners keep no dense plane and report 0.
func (r *Runner) RegWrites(id RegID) uint32 {
	if !r.mem.dense {
		return 0
	}
	return r.mem.writeSeqs[id]
}

// RegLastWriter returns the process that last wrote the register with the
// given dense id (0 if it was never written since construction or the last
// Reset). Machine mode only; coroutine runners keep no dense plane and
// report 0.
func (r *Runner) RegLastWriter(id RegID) procset.ID {
	if !r.mem.dense {
		return 0
	}
	return r.mem.lastWriter[id]
}

// Halted reports whether the process's automaton has halted.
func (r *Runner) Halted(p procset.ID) bool {
	return r.procAt(p).isHalted
}

// StepsTaken returns the number of steps the process has taken.
func (r *Runner) StepsTaken(p procset.ID) int { return r.procAt(p).stepCount }

func (r *Runner) procAt(p procset.ID) *proc {
	if p < 1 || procset.ID(r.n) < p {
		panic(fmt.Sprintf("sim: process %v outside Π%d", p, r.n))
	}
	return r.procs[p-1]
}

// Step executes one step of process p: the process's pending memory
// operation is performed, and the process then computes locally until it
// produces its next operation or halts (for coroutines the runner waits for
// the posting; for machines this is one Next call). When the process has
// already halted, the step is a no-op. Step must not be called after Close.
func (r *Runner) Step(p procset.ID) StepInfo {
	if r.closed {
		panic("sim: Step after Close")
	}
	pr := r.procAt(p)
	info := StepInfo{Index: r.steps, Proc: p, Fault: pr.fault}
	r.steps++
	if r.machine != nil {
		r.stepMachine(pr, &info)
	} else {
		r.stepCoroutine(pr, &info)
	}
	r.observe(&info)
	return info
}

// stepCoroutine executes one step of a coroutine process over its request/
// response channels.
func (r *Runner) stepCoroutine(pr *proc, info *StepInfo) {
	if !r.fetchPending(pr) {
		info.Kind = OpNoop
		r.recordStep(info.Index, pr.id, OpNoop, -1)
		return
	}
	req := *pr.pending
	pr.pending = nil
	pr.stepCount++
	r.recordStep(info.Index, pr.id, req.kind, req.reg.id)
	switch req.kind {
	case OpRead:
		v := r.mem.read(req.reg)
		info.Kind, info.Reg, info.Value = OpRead, req.reg.name, v
		pr.resp <- v
	case OpWrite:
		r.mem.write(req.reg, req.value)
		info.Kind, info.Reg, info.Value = OpWrite, req.reg.name, req.value
		pr.resp <- nil
	default:
		panic(badOpKind(req.kind))
	}
	// Park barrier: wait until the process has finished the local
	// computation that follows the operation, i.e. until it posts its next
	// operation or its function returns. This keeps execution serial and
	// lets the harness inspect shared state safely between steps.
	r.fetchPending(pr)
}

// fetchPending ensures pr.pending holds the process's next request, blocking
// until the process posts one or halts. It reports false when the process
// has halted with no pending request.
func (r *Runner) fetchPending(pr *proc) bool {
	if pr.isHalted {
		return false
	}
	if pr.pending != nil {
		return true
	}
	select {
	case req := <-pr.req:
		pr.pending = &req
		return true
	case <-pr.halted:
		// Drain a request that may have been posted concurrently with the
		// halt of a different code path; channels are unbuffered so a halted
		// process cannot have one in flight, but keep the check defensive.
		pr.isHalted = true
		return false
	}
}

func (r *Runner) observe(info *StepInfo) {
	if r.observer != nil {
		r.observer(*info)
	}
}

// Reset returns the runner to its initial state so it can be reused for
// another run without paying construction costs again: step counters
// revert to zero, every register value reverts to nil (the interned
// register set survives — an unwritten register reads as nil either way),
// and every process restarts from its factory. In machine mode this is a
// handful of stores plus the factory calls; in coroutine mode the old
// process goroutines are killed and fresh ones spawned.
//
// A reset runner produces bit-identical StepInfo streams to a freshly
// constructed one with the same Config — the property the campaign engine's
// runner pool relies on. Reset must not be called after Close, and, like
// Step, must not race with it.
func (r *Runner) Reset() error {
	if r.closed {
		panic("sim: Reset after Close")
	}
	if r.machine == nil {
		// Kill the current coroutine generation and wait it out; the new
		// generation gets a fresh kill channel.
		close(r.kill)
		r.wg.Wait()
		r.kill = make(chan struct{})
	}
	r.mem.resetValues()
	// With every register value dropped and every machine about to be
	// rebuilt, no vended arena object is reachable: recyclers may take back
	// everything in bulk, so a pooled runner's next job starts with warm
	// freelists instead of a cold heap — including after mid-run stops that
	// left scans in flight or crashed processes holding leases.
	r.mem.resetRecyclers()
	// The message substrate rewinds with the run: queues emptied, timing and
	// sequence state back to step 0, pooled envelope storage retained — the
	// same bit-identical-replay contract the register plane keeps.
	if r.net != nil {
		r.net.Reset()
	}
	r.steps = 0
	// Counters cover the current run, mirroring Steps; the flight recorder,
	// if any, deliberately survives (its ring spans pooled jobs until the
	// debugging session resets it).
	r.stats = statCounters{}
	for _, p := range r.procs {
		p.isHalted = false
		p.stepCount = 0
		p.fault = FaultHonest
		p.pending = nil
		p.machine = nil
		p.ptrMachine = nil
		p.nextKind = 0
		p.nextReg = nil
		p.nextRegID = 0
		p.nextValue = nil
		p.nextDest = 0
		p.started = false
		if err := r.start(p); err != nil {
			return err
		}
	}
	return nil
}

// RunResult summarizes a Run invocation.
type RunResult struct {
	// Steps is the number of steps executed by this Run call.
	Steps int
	// Stopped reports whether the stop predicate ended the run (as opposed
	// to the step budget running out).
	Stopped bool
}

// Run drives the runner with steps from src until the stop predicate returns
// true (checked every checkEvery steps; 0 means every step) or maxSteps have
// been executed. stop may be nil. Machine-mode runners without an observer
// execute on the batched fast path (see RunBatch in batch.go); all other
// configurations take the generic per-step loop. The two are bit-identical.
func (r *Runner) Run(src sched.Source, maxSteps, checkEvery int, stop func() bool) RunResult {
	return r.RunBatch(src, maxSteps, checkEvery, stop)
}

// runGeneric is the per-step run loop: the coroutine path, and the machine
// path when an observer needs a StepInfo per step.
func (r *Runner) runGeneric(src sched.Source, maxSteps, checkEvery int, stop func() bool) RunResult {
	for i := 0; i < maxSteps; i++ {
		r.Step(src.Next())
		if stop != nil && (i+1)%checkEvery == 0 && stop() {
			return RunResult{Steps: i + 1, Stopped: true}
		}
	}
	return RunResult{Steps: maxSteps, Stopped: false}
}

// RunSchedule executes a fixed finite schedule. Like Run it takes the
// batched machine loop when there is no observer to feed.
func (r *Runner) RunSchedule(s sched.Schedule) {
	if r.machine != nil && r.observer == nil {
		if r.closed {
			panic("sim: Step after Close")
		}
		r.stepBlock(s)
		return
	}
	for _, p := range s {
		r.Step(p)
	}
}

// Close terminates all process coroutines and waits for them to exit. The
// runner must not be used afterwards. Close is idempotent.
func (r *Runner) Close() {
	if r.closed {
		return
	}
	r.closed = true
	close(r.kill)
	// Release processes whose requests were fetched but never answered.
	r.wg.Wait()
}
