// The flight recorder: an off-by-default fixed ring of the last K executed
// steps, for post-mortem debugging of directed/adversarial runs whose fast
// paths deliberately materialize no StepInfo. When attached, every stepping
// path (Step, the batched block loop, the directed loop) appends one fixed-
// size record — proc, kind, dense register id, step index — to the ring;
// values are deliberately NOT recorded, because retaining written values
// would break the recycler's reuse horizon on arena-backed runners (the
// same reason observers disable recycling). Recording therefore leaves the
// run bit-identical and allocation-free; the only cost is one predictable
// nil-check per step while detached and a few stores while attached.
//
// The ring is dumped on demand — typically on a verdict failure or from a
// panic handler (see internal/explore's adversarial campaign and
// internal/obs for the formatted dump).

package sim

import (
	"fmt"
	"io"

	"github.com/settimeliness/settimeliness/internal/procset"
)

// FlightRec is one recorded step. Reg is the dense register id (resolve
// names with Runner.RegName); it is -1 for no-op steps of halted processes
// and for message steps (send/recv), which touch no register.
type FlightRec struct {
	Index int
	Proc  procset.ID
	Kind  OpKind
	Reg   RegID
}

// FlightRecorder is a fixed-capacity ring of the most recent steps.
// It is owned by the stepping goroutine, like the runner itself.
type FlightRecorder struct {
	recs []FlightRec
	pos  int
	len  int
}

// NewFlightRecorder returns a recorder retaining the last k steps (k ≥ 1).
func NewFlightRecorder(k int) *FlightRecorder {
	if k < 1 {
		panic(fmt.Sprintf("sim: flight recorder capacity %d < 1", k))
	}
	return &FlightRecorder{recs: make([]FlightRec, k)}
}

// record appends one step, overwriting the oldest when full.
func (f *FlightRecorder) record(index int, p procset.ID, kind OpKind, reg RegID) {
	f.recs[f.pos] = FlightRec{Index: index, Proc: p, Kind: kind, Reg: reg}
	f.pos++
	if f.pos == len(f.recs) {
		f.pos = 0
	}
	if f.len < len(f.recs) {
		f.len++
	}
}

// Len returns the number of records currently retained.
func (f *FlightRecorder) Len() int { return f.len }

// Cap returns the ring capacity.
func (f *FlightRecorder) Cap() int { return len(f.recs) }

// Records returns the retained steps oldest-first, as a fresh slice.
func (f *FlightRecorder) Records() []FlightRec {
	out := make([]FlightRec, 0, f.len)
	start := f.pos - f.len
	if start < 0 {
		start += len(f.recs)
	}
	for i := 0; i < f.len; i++ {
		out = append(out, f.recs[(start+i)%len(f.recs)])
	}
	return out
}

// Reset empties the ring.
func (f *FlightRecorder) Reset() { f.pos, f.len = 0, 0 }

// Dump writes the retained steps oldest-first, one line per step, resolving
// register names through the runner the recorder was attached to. Processes
// carrying a non-honest fault class (Runner.SetFaultClass) are annotated
// per line — the class is resolved at dump time from the runner's current
// tags, so recording stays a fixed-size store and fault-free dumps are
// byte-identical to before the tagging existed.
func (f *FlightRecorder) Dump(w io.Writer, r *Runner) {
	recs := f.Records()
	fmt.Fprintf(w, "flight recorder: last %d step(s)\n", len(recs))
	for _, rec := range recs {
		tag := ""
		if fc := r.FaultClass(rec.Proc); fc != FaultHonest {
			tag = " [" + fc.String() + "]"
		}
		switch rec.Kind {
		case OpNoop:
			fmt.Fprintf(w, "  #%d %v noop (halted)%s\n", rec.Index, rec.Proc, tag)
		case OpSend, OpRecv:
			// Message steps carry no register (Reg is -1); endpoints and
			// payloads live on the network side, deliberately not retained.
			fmt.Fprintf(w, "  #%d %v %v%s\n", rec.Index, rec.Proc, rec.Kind, tag)
		default:
			fmt.Fprintf(w, "  #%d %v %v %s%s\n", rec.Index, rec.Proc, rec.Kind, r.RegName(rec.Reg), tag)
		}
	}
}

// SetFlightRecorder attaches (or, with nil, detaches) a flight recorder.
// The recorder survives Reset — its ring keeps accumulating across pooled
// jobs unless the caller resets it — and must only be touched from the
// stepping goroutine.
func (r *Runner) SetFlightRecorder(f *FlightRecorder) { r.flight = f }

// FlightRecorder returns the attached recorder, or nil.
func (r *Runner) FlightRecorder() *FlightRecorder { return r.flight }
