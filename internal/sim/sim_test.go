package sim

import (
	"fmt"
	"testing"

	"github.com/settimeliness/settimeliness/internal/procset"
	"github.com/settimeliness/settimeliness/internal/sched"
)

// counterAlgo increments a shared counter forever; each iteration is a read
// step followed by a write step.
func counterAlgo(env Env) {
	c := env.Reg("counter")
	for {
		v, _ := env.Read(c).(int)
		env.Write(c, v+1)
	}
}

// counterMachine is counterAlgo in direct-dispatch form: the same automaton
// with its program counter made explicit.
func counterMachine(_ procset.ID, regs Registry) Machine {
	c := regs.Reg("counter")
	reading := true
	return MachineFunc(func(prev any) (Op, bool) {
		if reading {
			reading = false
			return ReadOp(c), true
		}
		reading = true
		v, _ := prev.(int)
		return WriteOp(c, v+1), true
	})
}

func newTestRunner(t *testing.T, n int, algo func(p procset.ID) Algorithm) *Runner {
	t.Helper()
	r, err := NewRunner(Config{N: n, Algorithm: algo})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func TestSingleProcessCounter(t *testing.T) {
	t.Parallel()
	r := newTestRunner(t, 1, func(procset.ID) Algorithm { return counterAlgo })
	for i := 0; i < 10; i++ {
		r.Step(1)
	}
	// 10 steps = 5 read/write pairs.
	reg := r.mem.reg("counter")
	if got := r.mem.read(reg); got != 5 {
		t.Errorf("counter = %v, want 5", got)
	}
	if r.StepsTaken(1) != 10 {
		t.Errorf("StepsTaken = %d, want 10", r.StepsTaken(1))
	}
}

func TestTwoProcessesShareRegister(t *testing.T) {
	t.Parallel()
	r := newTestRunner(t, 2, func(procset.ID) Algorithm { return counterAlgo })
	// Interleave so that both read 0 before either writes: lost update, the
	// classic read/write race the model permits.
	// p1 read, p2 read, p1 write(1), p2 write(1).
	for _, p := range []procset.ID{1, 2, 1, 2} {
		r.Step(p)
	}
	reg := r.mem.reg("counter")
	if got := r.mem.read(reg); got != 1 {
		t.Errorf("counter = %v, want 1 (lost update)", got)
	}
}

func TestDeterminism(t *testing.T) {
	t.Parallel()
	run := func() []StepInfo {
		var trace []StepInfo
		r, err := NewRunner(Config{
			N:         3,
			Algorithm: func(procset.ID) Algorithm { return counterAlgo },
			Observer:  func(s StepInfo) { trace = append(trace, s) },
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		src, err := sched.Random(3, 99, nil)
		if err != nil {
			t.Fatal(err)
		}
		r.Run(src, 300, 0, nil)
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at step %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestHaltedProcessNoop(t *testing.T) {
	t.Parallel()
	r := newTestRunner(t, 1, func(procset.ID) Algorithm {
		return func(env Env) {
			env.Write(env.Reg("x"), 42)
		}
	})
	info := r.Step(1)
	if info.Kind != OpWrite || info.Value != 42 {
		t.Fatalf("first step = %+v", info)
	}
	// The algorithm has returned; further steps are no-ops.
	info = r.Step(1)
	if info.Kind != OpNoop {
		t.Fatalf("second step = %+v, want noop", info)
	}
	if !r.Halted(1) {
		t.Error("Halted = false after return")
	}
	if r.StepsTaken(1) != 1 {
		t.Errorf("StepsTaken = %d, want 1 (noop steps do not count)", r.StepsTaken(1))
	}
}

func TestHarnessSeesLocalOutputsAfterStep(t *testing.T) {
	t.Parallel()
	// The park barrier guarantees that local state shared with the harness
	// is visible and quiescent when Step returns.
	out := make([]int, 3)
	r := newTestRunner(t, 2, func(p procset.ID) Algorithm {
		return func(env Env) {
			c := env.Reg("c")
			for i := 1; ; i++ {
				env.Read(c)
				out[p] = i // local post-step computation
			}
		}
	})
	for i := 1; i <= 5; i++ {
		r.Step(1)
		if out[1] != i {
			t.Fatalf("after step %d: out[1] = %d", i, out[1])
		}
	}
	if out[2] != 0 {
		t.Errorf("out[2] = %d, want 0 (never scheduled)", out[2])
	}
}

func TestObserverSequence(t *testing.T) {
	t.Parallel()
	var trace []StepInfo
	r, err := NewRunner(Config{
		N: 2,
		Algorithm: func(p procset.ID) Algorithm {
			return func(env Env) {
				x := env.Reg("x")
				env.Write(x, int(p))
				env.Read(x)
			}
		},
		Observer: func(s StepInfo) { trace = append(trace, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.RunSchedule(sched.Schedule{1, 2, 1, 2})
	want := []StepInfo{
		{Index: 0, Proc: 1, Kind: OpWrite, Reg: "x", Value: 1},
		{Index: 1, Proc: 2, Kind: OpWrite, Reg: "x", Value: 2},
		{Index: 2, Proc: 1, Kind: OpRead, Reg: "x", Value: 2},
		{Index: 3, Proc: 2, Kind: OpRead, Reg: "x", Value: 2},
	}
	if len(trace) != len(want) {
		t.Fatalf("trace = %+v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Errorf("step %d = %+v, want %+v", i, trace[i], want[i])
		}
	}
}

func TestReadUnwrittenRegisterIsNil(t *testing.T) {
	t.Parallel()
	var got any = "sentinel"
	r := newTestRunner(t, 1, func(procset.ID) Algorithm {
		return func(env Env) {
			got = env.Read(env.Reg("fresh"))
		}
	})
	r.Step(1)
	if got != nil {
		t.Errorf("read fresh register = %v, want nil", got)
	}
}

func TestRunStopPredicate(t *testing.T) {
	t.Parallel()
	r := newTestRunner(t, 1, func(procset.ID) Algorithm { return counterAlgo })
	src, err := sched.RoundRobin(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run(src, 1000, 0, func() bool { return r.Steps() >= 7 })
	if !res.Stopped || res.Steps != 7 {
		t.Errorf("Run = %+v, want stopped at 7", res)
	}
	res = r.Run(src, 5, 0, func() bool { return false })
	if res.Stopped || res.Steps != 5 {
		t.Errorf("Run = %+v, want budget exhaustion at 5", res)
	}
}

func TestRunCheckEvery(t *testing.T) {
	t.Parallel()
	r := newTestRunner(t, 1, func(procset.ID) Algorithm { return counterAlgo })
	src, err := sched.RoundRobin(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	res := r.Run(src, 100, 10, func() bool { calls++; return true })
	if calls != 1 || res.Steps != 10 {
		t.Errorf("checkEvery: calls = %d, steps = %d", calls, res.Steps)
	}
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewRunner(Config{N: 0, Algorithm: func(procset.ID) Algorithm { return counterAlgo }}); err == nil {
		t.Error("n = 0 accepted")
	}
	if _, err := NewRunner(Config{N: 65, Algorithm: func(procset.ID) Algorithm { return counterAlgo }}); err == nil {
		t.Error("n = 65 accepted")
	}
	if _, err := NewRunner(Config{N: 2}); err == nil {
		t.Error("neither Algorithm nor Machine rejected")
	}
	if _, err := NewRunner(Config{
		N:         2,
		Algorithm: func(procset.ID) Algorithm { return counterAlgo },
		Machine:   counterMachine,
	}); err == nil {
		t.Error("both Algorithm and Machine accepted")
	}
	if _, err := NewRunner(Config{N: 2, Algorithm: func(procset.ID) Algorithm { return nil }}); err == nil {
		t.Error("nil per-process algorithm accepted")
	}
	if _, err := NewRunner(Config{N: 2, Machine: func(procset.ID, Registry) Machine { return nil }}); err == nil {
		t.Error("nil per-process machine accepted")
	}
}

func TestCloseReleasesBlockedProcesses(t *testing.T) {
	t.Parallel()
	r, err := NewRunner(Config{N: 8, Algorithm: func(procset.ID) Algorithm { return counterAlgo }})
	if err != nil {
		t.Fatal(err)
	}
	r.Step(1)
	r.Close()
	r.Close() // idempotent
}

func TestManyRegisters(t *testing.T) {
	t.Parallel()
	r := newTestRunner(t, 4, func(p procset.ID) Algorithm {
		return func(env Env) {
			for i := 0; ; i++ {
				reg := env.Reg(fmt.Sprintf("R[%d,%d]", p, i%16))
				env.Write(reg, i)
			}
		}
	})
	src, err := sched.RoundRobin(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Run(src, 256, 0, nil)
	if got := r.Registers(); got != 64 {
		t.Errorf("Registers = %d, want 64", got)
	}
}

func TestStepPanicsOutOfRange(t *testing.T) {
	t.Parallel()
	r := newTestRunner(t, 2, func(procset.ID) Algorithm { return counterAlgo })
	defer func() {
		if recover() == nil {
			t.Error("Step(5) did not panic")
		}
	}()
	r.Step(5)
}

// BenchmarkStep is the engine's headline number: steps/sec of the coroutine
// path (two channel handoffs per step) versus the direct-dispatch Machine
// path (plain function calls), on the same 4-process counter automaton.
func BenchmarkStep(b *testing.B) {
	b.Run("coroutine", func(b *testing.B) {
		r, err := NewRunner(Config{N: 4, Algorithm: func(procset.ID) Algorithm { return counterAlgo }})
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Step(procset.ID(i%4 + 1))
		}
	})
	b.Run("machine", func(b *testing.B) {
		r, err := NewRunner(Config{N: 4, Machine: counterMachine})
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Step(procset.ID(i%4 + 1))
		}
	})
}

// BenchmarkRunnerReuse compares constructing a fresh runner per run against
// Reset-reusing one, in both execution modes (the campaign pool's win).
func BenchmarkRunnerReuse(b *testing.B) {
	const stepsPerRun = 64
	run := func(r *Runner) {
		for i := 0; i < stepsPerRun; i++ {
			r.Step(procset.ID(i%4 + 1))
		}
	}
	b.Run("fresh/coroutine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := NewRunner(Config{N: 4, Algorithm: func(procset.ID) Algorithm { return counterAlgo }})
			if err != nil {
				b.Fatal(err)
			}
			run(r)
			r.Close()
		}
	})
	b.Run("fresh/machine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := NewRunner(Config{N: 4, Machine: counterMachine})
			if err != nil {
				b.Fatal(err)
			}
			run(r)
			r.Close()
		}
	})
	b.Run("reset/machine", func(b *testing.B) {
		r, err := NewRunner(Config{N: 4, Machine: counterMachine})
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := r.Reset(); err != nil {
				b.Fatal(err)
			}
			run(r)
		}
	})
}
