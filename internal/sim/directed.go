// Directed execution: the fast path for adaptive adversaries. The batched
// loop (batch.go) assumes the whole schedule is known ahead of the run, so
// an observer that must *react* to executed steps — the parking adversary of
// the Theorem 26/27 experiments — was stuck on the generic per-step path:
// one Step call, one StepInfo materialization, and one observer dispatch per
// step. A Director collapses that round trip: it supplies the next process
// to schedule and is called back only on write steps, with the register
// identified by its dense RegID instead of a name to parse. RunDirected
// drives the director through an inlined machine-dispatch loop that
// materializes no StepInfo at all and hoists the stop/checkEvery branching
// out of the inner loop exactly like RunBatch.
//
// This mirrors the adaptive-adversary-as-scheduler framing used by
// lower-bound executions in the literature: the adversary IS the schedule
// source, and the simulator only owes it the write events it bases its next
// scheduling decision on.

package sim

import "github.com/settimeliness/settimeliness/internal/procset"

// Director adaptively drives a run: Next picks the process taking the next
// step (the adversary's scheduling decision), and OnWrite reports every
// executed write step — the only step kind the parking adversaries react to.
// OnWrite runs after the write (and the writer's following local
// computation) completed, i.e. at the point a Config.Observer would have
// seen the step; slot is the register's dense id (see RegID and
// Runner.RegName) and value the value written.
//
// Read and no-op steps produce no callback: a directed run's only per-step
// costs beyond the batched loop are the Next dispatch and a branch.
type Director interface {
	Next() procset.ID
	OnWrite(slot RegID, proc procset.ID, value any)
}

// WriteMutator is the pre-write interception hook of the Byzantine fault
// plane: a director that also implements it is consulted before each write
// lands and may replace the value stored in the register. MutateWrite
// receives the register's dense slot, the writer, the register's current
// (pre-write) content old, and the value the automaton asked to write; it
// returns the value that actually lands. Returning value unchanged makes
// the write honest. The writer's automaton is never told — it proceeds
// believing its own value landed, which is exactly the corrupting-writer
// model (flipped bits, equivocation, replayed stale values).
//
// Contract: OnWrite still fires after the write with the value that landed
// (the mutated one), so schedule-reactive state sees shared-memory reality.
// Mutating directors run only on the machine-mode directed fast path and
// require a runner built with Config.NoRecycle — a replayed old (or an
// honest value retained for later injection) outlives the overwrite that
// would normally retire it, which breaks the arena recycler's reuse
// horizon; RunDirected panics on violations of either requirement rather
// than silently dropping mutations. Mutated values must respect the
// invariants the algorithms' readers check at runtime (e.g. int-typed
// registers stay int-typed); a mutation that breaks a reader's type
// assertion panics the run, which the campaign engine isolates and reports.
type WriteMutator interface {
	MutateWrite(slot RegID, proc procset.ID, old, value any) any
}

// DirectorRW is a director with the pre-write interception hook — the
// interface Byzantine adversaries implement.
type DirectorRW interface {
	Director
	WriteMutator
}

// RunDirected drives the runner with steps chosen by the director until the
// stop predicate returns true (checked every checkEvery steps; 0 means every
// step) or maxSteps have been executed — Run's contract with the schedule
// source replaced by an adaptive director. Machine-mode runners without an
// observer execute on the inlined fast loop; other configurations fall back
// to a generic per-step loop with identical observable behavior (schedules,
// write callbacks, stop decisions).
func (r *Runner) RunDirected(d Director, maxSteps, checkEvery int, stop func() bool) RunResult {
	if checkEvery <= 0 {
		checkEvery = 1
	}
	mut, mutating := d.(WriteMutator)
	if r.machine == nil || r.observer != nil {
		if mutating {
			// Mutation exists only on the machine fast path: the generic loop
			// would execute writes before the director could intercept them,
			// and silently-honest "Byzantine" runs are a false-green hazard.
			panic("sim: WriteMutator directors require a machine-mode runner without an observer")
		}
		return r.runDirectedGeneric(d, maxSteps, checkEvery, stop)
	}
	if r.closed {
		panic("sim: Step after Close")
	}
	if mutating {
		if r.mem.recycleOK {
			panic("sim: WriteMutator directors require Config.NoRecycle (replayed/retained values outlive the recycler's reuse horizon)")
		}
		return r.runDirectedRW(d, mut, maxSteps, checkEvery, stop)
	}
	executed := 0
	for executed < maxSteps {
		// Steps until the next stop check (or the end of the run): the whole
		// chunk executes with no predicate branching, mirroring RunBatch.
		chunk := maxSteps - executed
		if stop != nil && chunk > checkEvery {
			chunk = checkEvery
		}
		for end := executed + chunk; executed < end; executed++ {
			r.stepDirected(d)
		}
		if stop != nil && executed%checkEvery == 0 && stop() {
			return RunResult{Steps: executed, Stopped: true}
		}
	}
	return RunResult{Steps: maxSteps, Stopped: false}
}

// stepDirected executes one director-chosen step by inlined machine
// dispatch: Step minus the StepInfo, plus the write callback. Like
// stepBlock, the machine-advance bookkeeping is spelled out in the body —
// the advanceMachine call (and the Op struct copy through it) is measurable
// at the adversarial campaigns' throughput.
func (r *Runner) stepDirected(d Director) {
	p := d.Next()
	pr := r.procAt(p)
	r.steps++
	if pr.isHalted {
		r.recordStep(r.steps-1, p, OpNoop, -1)
		return
	}
	if !pr.started {
		pr.started = true
		r.advanceMachine(pr, nil)
		if pr.isHalted {
			r.recordStep(r.steps-1, p, OpNoop, -1)
			return
		}
	}
	id := pr.nextRegID
	pr.stepCount++
	r.recordStep(r.steps-1, p, pr.nextKind, id)
	var prev, wrote any
	mem := r.mem
	isWrite := pr.nextKind == OpWrite
	switch pr.nextKind {
	case OpWrite:
		wrote = pr.nextValue
		mem.values[id] = wrote
		mem.writeSeqs[id]++
		mem.lastWriter[id] = p
	case OpRead:
		prev = mem.values[id]
	case OpSend:
		r.net.Send(r.steps-1, p, pr.nextDest, pr.nextValue)
	default: // OpRecv — setNextNet admits nothing else
		if m := r.net.Recv(r.steps-1, p); m != nil {
			prev = m
		}
	}
	if pm := pr.ptrMachine; pm != nil {
		op := pm.NextOp(prev)
		if op == nil {
			pr.isHalted = true
		} else if op.Kind != OpRead && op.Kind != OpWrite {
			r.setNextNet(pr, op.Kind, op.Dest, op.Value)
		} else {
			rr := op.reg
			if rr == nil {
				rr = mustRegister(op.Reg)
			}
			pr.nextKind, pr.nextReg = op.Kind, rr
			pr.nextRegID = rr.id
			if op.Kind == OpWrite {
				pr.nextValue = op.Value
			}
		}
	} else if op, ok := pr.machine.Next(prev); !ok {
		pr.isHalted = true
	} else if op.Kind != OpRead && op.Kind != OpWrite {
		r.setNextNet(pr, op.Kind, op.Dest, op.Value)
	} else {
		rr := op.reg
		if rr == nil {
			rr = mustRegister(op.Reg)
		}
		pr.nextKind, pr.nextReg = op.Kind, rr
		pr.nextRegID = rr.id
		if op.Kind == OpWrite {
			pr.nextValue = op.Value
		}
	}
	if isWrite {
		d.OnWrite(id, p, wrote)
	}
}

// runDirectedRW is RunDirected's chunked loop for mutating directors: the
// same stop/checkEvery hoisting, stepping through stepDirectedRW. It is a
// separate loop (rather than a branch inside stepDirected) so the honest
// directed path keeps its instruction stream — and its 0 allocs/op
// steady state — bit-identical to before the fault plane existed.
func (r *Runner) runDirectedRW(d Director, mut WriteMutator, maxSteps, checkEvery int, stop func() bool) RunResult {
	executed := 0
	for executed < maxSteps {
		chunk := maxSteps - executed
		if stop != nil && chunk > checkEvery {
			chunk = checkEvery
		}
		for end := executed + chunk; executed < end; executed++ {
			r.stepDirectedRW(d, mut)
		}
		if stop != nil && executed%checkEvery == 0 && stop() {
			return RunResult{Steps: executed, Stopped: true}
		}
	}
	return RunResult{Steps: maxSteps, Stopped: false}
}

// stepDirectedRW is stepDirected with the pre-write interception: the
// mutator sees (slot, writer, current content, intended value) and decides
// what lands; everything else — machine advance, bookkeeping, the post-write
// OnWrite callback — is identical, so an inert mutator (one that always
// returns value) replays the honest path bit for bit.
func (r *Runner) stepDirectedRW(d Director, mut WriteMutator) {
	p := d.Next()
	pr := r.procAt(p)
	r.steps++
	if pr.isHalted {
		r.recordStep(r.steps-1, p, OpNoop, -1)
		return
	}
	if !pr.started {
		pr.started = true
		r.advanceMachine(pr, nil)
		if pr.isHalted {
			r.recordStep(r.steps-1, p, OpNoop, -1)
			return
		}
	}
	id := pr.nextRegID
	pr.stepCount++
	r.recordStep(r.steps-1, p, pr.nextKind, id)
	var prev, wrote any
	mem := r.mem
	isWrite := pr.nextKind == OpWrite
	switch pr.nextKind {
	case OpWrite:
		wrote = mut.MutateWrite(id, p, mem.values[id], pr.nextValue)
		mem.values[id] = wrote
		mem.writeSeqs[id]++
		mem.lastWriter[id] = p
	case OpRead:
		prev = mem.values[id]
	case OpSend:
		r.net.Send(r.steps-1, p, pr.nextDest, pr.nextValue)
	default: // OpRecv — setNextNet admits nothing else
		if m := r.net.Recv(r.steps-1, p); m != nil {
			prev = m
		}
	}
	if pm := pr.ptrMachine; pm != nil {
		op := pm.NextOp(prev)
		if op == nil {
			pr.isHalted = true
		} else if op.Kind != OpRead && op.Kind != OpWrite {
			r.setNextNet(pr, op.Kind, op.Dest, op.Value)
		} else {
			rr := op.reg
			if rr == nil {
				rr = mustRegister(op.Reg)
			}
			pr.nextKind, pr.nextReg = op.Kind, rr
			pr.nextRegID = rr.id
			if op.Kind == OpWrite {
				pr.nextValue = op.Value
			}
		}
	} else if op, ok := pr.machine.Next(prev); !ok {
		pr.isHalted = true
	} else if op.Kind != OpRead && op.Kind != OpWrite {
		r.setNextNet(pr, op.Kind, op.Dest, op.Value)
	} else {
		rr := op.reg
		if rr == nil {
			rr = mustRegister(op.Reg)
		}
		pr.nextKind, pr.nextReg = op.Kind, rr
		pr.nextRegID = rr.id
		if op.Kind == OpWrite {
			pr.nextValue = op.Value
		}
	}
	if isWrite {
		d.OnWrite(id, p, wrote)
	}
}

// runDirectedGeneric is the per-step directed loop for coroutine runners and
// observed machine runners: a full Step per schedule entry, with the write
// callback synthesized from the StepInfo (the register id resolved through
// the interning table, off the fast path by construction).
func (r *Runner) runDirectedGeneric(d Director, maxSteps, checkEvery int, stop func() bool) RunResult {
	for i := 0; i < maxSteps; i++ {
		p := d.Next()
		info := r.Step(p)
		if info.Kind == OpWrite {
			d.OnWrite(r.mem.idOf(info.Reg), p, info.Value)
		}
		if stop != nil && (i+1)%checkEvery == 0 && stop() {
			return RunResult{Steps: i + 1, Stopped: true}
		}
	}
	return RunResult{Steps: maxSteps, Stopped: false}
}
