// Runner metrics: the counter block behind the observability plane.
//
// The contract that keeps this compatible with the engine's performance
// story: counters are plain integer fields accumulated by the stepping
// goroutine — block-locally inside the batched loops and folded into the
// runner at block boundaries, or directly on the per-step paths whose cost
// is dominated by channel handoffs anyway — and *sampled* only between
// runs or at RunBatch/checkEvery block boundaries, never per step. Nothing
// here allocates, takes a lock, or changes a single scheduling or memory
// decision: an observer-free machine run with metrics compiled in is
// bit-identical to one without, and stays 0 allocs/op (pinned by
// TestBatchMetricsDisabledAllocs and the CI bench-smoke job).

package sim

import "github.com/settimeliness/settimeliness/internal/procset"

// Stats is a snapshot of a runner's step counters. All fields count since
// construction or the last Reset.
// Steps == Reads + Writes + Noops + Sends + Recvs.
type Stats struct {
	// Steps is the total number of executed steps (Runner.Steps).
	Steps int64 `json:"steps"`
	// Reads counts read steps.
	Reads int64 `json:"reads"`
	// Writes counts write steps (register writes: every write step stores
	// exactly one register value).
	Writes int64 `json:"writes"`
	// Noops counts steps granted to halted processes.
	Noops int64 `json:"noops"`
	// Sends counts message-send steps (runners with a Config.Network).
	Sends int64 `json:"sends,omitempty"`
	// Recvs counts message-receive steps, delivering or empty.
	Recvs int64 `json:"recvs,omitempty"`
	// Registers is the number of interned shared registers (a gauge; the
	// interned set survives Reset).
	Registers int64 `json:"registers"`
}

// Add returns the field-wise sum of s and t (Registers, a gauge, takes t's
// value). Campaign-level aggregation folds per-runner snapshots this way.
func (s Stats) Add(t Stats) Stats {
	return Stats{
		Steps:     s.Steps + t.Steps,
		Reads:     s.Reads + t.Reads,
		Writes:    s.Writes + t.Writes,
		Noops:     s.Noops + t.Noops,
		Sends:     s.Sends + t.Sends,
		Recvs:     s.Recvs + t.Recvs,
		Registers: t.Registers,
	}
}

// Sub returns the field-wise difference s - t (Registers, a gauge, takes
// s's value) — the delta between two snapshots of the same runner.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Steps:     s.Steps - t.Steps,
		Reads:     s.Reads - t.Reads,
		Writes:    s.Writes - t.Writes,
		Noops:     s.Noops - t.Noops,
		Sends:     s.Sends - t.Sends,
		Recvs:     s.Recvs - t.Recvs,
		Registers: s.Registers,
	}
}

// statCounters is the runner-embedded accumulation block. The step-kind
// counters are folded in at block boundaries by the batched loops and
// incremented directly by the per-step paths; Steps is derived from
// Runner.steps, which the engine has always maintained.
type statCounters struct {
	reads  int64
	writes int64
	noops  int64
	sends  int64
	recvs  int64
}

// recordStep accumulates the counters for one executed step and, when a
// flight recorder is attached, appends the step to its ring. Used by the
// per-step paths (Step, the directed loop); the batched block loop
// accumulates block-locally and folds at block boundaries instead.
func (r *Runner) recordStep(index int, p procset.ID, kind OpKind, reg RegID) {
	switch kind {
	case OpRead:
		r.stats.reads++
	case OpWrite:
		r.stats.writes++
	case OpSend:
		r.stats.sends++
	case OpRecv:
		r.stats.recvs++
	default:
		r.stats.noops++
	}
	if fr := r.flight; fr != nil {
		fr.record(index, p, kind, reg)
	}
}

// Stats returns a snapshot of the runner's counters. Safe between Step/Run
// calls on the stepping goroutine (like every other runner accessor); do not
// race it with stepping.
func (r *Runner) Stats() Stats {
	return Stats{
		Steps:     int64(r.steps),
		Reads:     r.stats.reads,
		Writes:    r.stats.writes,
		Noops:     r.stats.noops,
		Sends:     r.stats.sends,
		Recvs:     r.stats.recvs,
		Registers: int64(r.mem.size()),
	}
}

// StatsSource is implemented by runner-scoped recyclers (see RecyclerHost)
// that export gauges — the snapshot arena publishes its segment/lease
// recycling counters through it. Implementations write name-prefixed keys
// into dst.
type StatsSource interface {
	StatsInto(dst map[string]int64)
}

// RecyclerStats collects the gauges of every runner-scoped recycler that
// implements StatsSource into dst (created by the caller). On runners
// without recycling (coroutine mode, observer attached) it is a no-op.
// Sampling-path only: allocates map entries, so keep it off hot loops.
func (r *Runner) RecyclerStats(dst map[string]int64) {
	for _, v := range r.mem.recyclers {
		if s, ok := v.(StatsSource); ok {
			s.StatsInto(dst)
		}
	}
}
