package sim

import (
	"testing"

	"github.com/settimeliness/settimeliness/internal/procset"
	"github.com/settimeliness/settimeliness/internal/sched"
)

// traceOf runs cfg (plus a recording observer) over the schedule and returns
// the StepInfo stream.
func traceOf(t *testing.T, cfg Config, s sched.Schedule) []StepInfo {
	t.Helper()
	var trace []StepInfo
	cfg.Observer = func(info StepInfo) { trace = append(trace, info) }
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.RunSchedule(s)
	return trace
}

func sameTrace(t *testing.T, label string, a, b []StepInfo) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: trace lengths differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: traces diverge at step %d: %+v vs %+v", label, i, a[i], b[i])
		}
	}
}

// TestMachineMatchesCoroutine is the engine's core equivalence property: the
// same automaton in coroutine and direct-dispatch form produces bit-identical
// StepInfo streams on the same schedule.
func TestMachineMatchesCoroutine(t *testing.T) {
	t.Parallel()
	src, err := sched.Random(3, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.Take(src, 500)
	coro := traceOf(t, Config{N: 3, Algorithm: func(procset.ID) Algorithm { return counterAlgo }}, s)
	mach := traceOf(t, Config{N: 3, Machine: counterMachine}, s)
	sameTrace(t, "coroutine vs machine", coro, mach)
}

// haltingMachine writes its id once and halts.
func haltingMachine(p procset.ID, regs Registry) Machine {
	x := regs.Reg("x")
	done := false
	return MachineFunc(func(prev any) (Op, bool) {
		if done {
			return Op{}, false
		}
		done = true
		return WriteOp(x, int(p)), true
	})
}

func TestMachineHaltsToNoop(t *testing.T) {
	t.Parallel()
	r, err := NewRunner(Config{N: 1, Machine: haltingMachine})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	info := r.Step(1)
	if info.Kind != OpWrite || info.Value != 1 {
		t.Fatalf("first step = %+v", info)
	}
	info = r.Step(1)
	if info.Kind != OpNoop {
		t.Fatalf("second step = %+v, want noop", info)
	}
	if !r.Halted(1) {
		t.Error("Halted = false after machine finished")
	}
	if r.StepsTaken(1) != 1 {
		t.Errorf("StepsTaken = %d, want 1 (noop steps do not count)", r.StepsTaken(1))
	}
}

func TestMachineImmediateHaltIsNoop(t *testing.T) {
	t.Parallel()
	r, err := NewRunner(Config{N: 1, Machine: func(procset.ID, Registry) Machine {
		return MachineFunc(func(any) (Op, bool) { return Op{}, false })
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if info := r.Step(1); info.Kind != OpNoop {
		t.Fatalf("step of immediately-halting machine = %+v, want noop", info)
	}
	if r.StepsTaken(1) != 0 {
		t.Errorf("StepsTaken = %d, want 0", r.StepsTaken(1))
	}
}

// TestMachineFirstNextReceivesNil pins the Next contract: nil before any
// operation, the read value after reads, nil after writes.
func TestMachineFirstNextReceivesNil(t *testing.T) {
	t.Parallel()
	var got []any
	r, err := NewRunner(Config{N: 1, Machine: func(_ procset.ID, regs Registry) Machine {
		x := regs.Reg("x")
		pc := 0
		return MachineFunc(func(prev any) (Op, bool) {
			got = append(got, prev)
			switch pc {
			case 0:
				pc++
				return WriteOp(x, "v"), true
			case 1:
				pc++
				return ReadOp(x), true
			default:
				return Op{}, false
			}
		})
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.RunSchedule(sched.Schedule{1, 1})
	want := []any{nil, nil, "v"}
	if len(got) != len(want) {
		t.Fatalf("Next called %d times, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Next call %d received %v, want %v", i, got[i], want[i])
		}
	}
}

// TestResetDeterminism is the pooling contract: a Reset runner replays the
// exact StepInfo stream of a fresh one, in both execution modes.
func TestResetDeterminism(t *testing.T) {
	t.Parallel()
	src, err := sched.Random(3, 41, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.Take(src, 400)
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"machine", Config{N: 3, Machine: counterMachine}},
		{"coroutine", Config{N: 3, Algorithm: func(procset.ID) Algorithm { return counterAlgo }}},
	} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			t.Parallel()
			fresh := traceOf(t, mode.cfg, s)

			var trace []StepInfo
			cfg := mode.cfg
			cfg.Observer = func(info StepInfo) { trace = append(trace, info) }
			r, err := NewRunner(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			for round := 0; round < 3; round++ {
				trace = trace[:0]
				if err := r.Reset(); err != nil {
					t.Fatal(err)
				}
				if r.Steps() != 0 {
					t.Fatalf("round %d: Steps = %d after Reset", round, r.Steps())
				}
				r.RunSchedule(s)
				reused := append([]StepInfo(nil), trace...)
				sameTrace(t, "fresh vs reset", fresh, reused)
			}
		})
	}
}

// TestResetRevivesHaltedProcesses covers reuse of runs whose automata
// terminate (the explorer's one-shot protocols).
func TestResetRevivesHaltedProcesses(t *testing.T) {
	t.Parallel()
	r, err := NewRunner(Config{N: 2, Machine: haltingMachine})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for round := 0; round < 2; round++ {
		if err := r.Reset(); err != nil {
			t.Fatal(err)
		}
		for _, p := range []procset.ID{1, 2} {
			if r.Halted(p) {
				t.Fatalf("round %d: %v halted right after Reset", round, p)
			}
		}
		r.RunSchedule(sched.Schedule{1, 2, 1, 2})
		if got := r.mem.read(r.mem.reg("x")); got != 2 {
			t.Fatalf("round %d: x = %v, want 2", round, got)
		}
		if !r.Halted(1) || !r.Halted(2) {
			t.Fatalf("round %d: processes not halted after their writes", round)
		}
	}
}

// TestResetClearsRegisterValues pins the interning semantics: the register
// set survives Reset, values do not.
func TestResetClearsRegisterValues(t *testing.T) {
	t.Parallel()
	r, err := NewRunner(Config{N: 1, Machine: counterMachine})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.RunSchedule(sched.Schedule{1, 1, 1, 1})
	if got := r.mem.read(r.mem.reg("counter")); got != 2 {
		t.Fatalf("counter = %v before Reset, want 2", got)
	}
	regs := r.Registers()
	if err := r.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := r.mem.read(r.mem.reg("counter")); got != nil {
		t.Errorf("counter = %v after Reset, want nil", got)
	}
	if r.Registers() != regs {
		t.Errorf("Registers = %d after Reset, want %d (interned set survives)", r.Registers(), regs)
	}
}

func TestMachineRunnerStopPredicate(t *testing.T) {
	t.Parallel()
	r, err := NewRunner(Config{N: 1, Machine: counterMachine})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	src, err := sched.RoundRobin(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run(src, 1000, 0, func() bool { return r.Steps() >= 7 })
	if !res.Stopped || res.Steps != 7 {
		t.Errorf("Run = %+v, want stopped at 7", res)
	}
}

// TestRegisterPlaneMetadata checks the dense-plane accessors: machine-mode
// runners count writes and track the last writer per register; coroutine
// runners (boxed plane) report zero values; Reset clears the metadata.
func TestRegisterPlaneMetadata(t *testing.T) {
	t.Parallel()
	r, err := NewRunner(Config{N: 2, Machine: counterMachine})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.RunSchedule(sched.Schedule{1, 1, 1, 2, 2, 2})
	id := r.mem.idOf("counter")
	// counterMachine alternates read/write, so 3 steps per process = 1 write
	// each plus the in-flight ones; just check the invariants rather than the
	// exact automaton shape.
	if got := r.RegWrites(id); got == 0 {
		t.Errorf("RegWrites = 0 after writes, want > 0")
	}
	if got := r.RegLastWriter(id); got != 2 {
		t.Errorf("RegLastWriter = %v, want 2 (last scheduled writer)", got)
	}
	if err := r.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := r.RegWrites(id); got != 0 {
		t.Errorf("RegWrites = %d after Reset, want 0", got)
	}
	if got := r.RegLastWriter(id); got != 0 {
		t.Errorf("RegLastWriter = %v after Reset, want 0", got)
	}
}

// TestRegisterPlaneCoroutineZero: the dense plane exists only in machine
// mode; the accessors degrade to zero values on coroutine runners.
func TestRegisterPlaneCoroutineZero(t *testing.T) {
	t.Parallel()
	r, err := NewRunner(Config{N: 1, Algorithm: func(procset.ID) Algorithm { return counterAlgo }})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.RunSchedule(sched.Schedule{1, 1, 1, 1})
	id := r.mem.idOf("counter")
	if got := r.RegWrites(id); got != 0 {
		t.Errorf("coroutine RegWrites = %d, want 0", got)
	}
	if got := r.RegLastWriter(id); got != 0 {
		t.Errorf("coroutine RegLastWriter = %v, want 0", got)
	}
}
