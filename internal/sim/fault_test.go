package sim

import (
	"testing"

	"github.com/settimeliness/settimeliness/internal/procset"
)

func TestFaultClassString(t *testing.T) {
	t.Parallel()
	want := map[FaultClass]string{
		FaultHonest:    "honest",
		FaultCrashed:   "crashed",
		FaultByzantine: "byzantine",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

// TestStepInfoCarriesFaultClass: the generic Step path stamps the tagged
// class into every StepInfo, the default is honest, and Reset clears tags.
func TestStepInfoCarriesFaultClass(t *testing.T) {
	t.Parallel()
	r, err := NewRunner(Config{N: 2, Machine: haltingMachine})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if info := r.Step(1); info.Fault != FaultHonest {
		t.Errorf("untagged step carries %v", info.Fault)
	}
	r.SetFaultClass(2, FaultByzantine)
	if info := r.Step(2); info.Fault != FaultByzantine {
		t.Errorf("tagged step carries %v, want byzantine", info.Fault)
	}
	if got := r.FaultClass(2); got != FaultByzantine {
		t.Errorf("FaultClass = %v", got)
	}
	if err := r.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := r.FaultClass(2); got != FaultHonest {
		t.Errorf("FaultClass after Reset = %v, want honest", got)
	}
	if info := r.Step(2); info.Fault != FaultHonest {
		t.Errorf("post-Reset step carries %v", info.Fault)
	}
}

// TestNoRecycleDisablesRecycling: the config knob forces the arena
// recycler off on an otherwise recycling-eligible (machine, observer-free)
// runner — the precondition mutating directors rely on.
func TestNoRecycleDisablesRecycling(t *testing.T) {
	t.Parallel()
	plain, err := NewRunner(Config{N: 1, Machine: haltingMachine})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if !plain.mem.recycleOK {
		t.Fatal("machine-mode observer-free runner should recycle by default")
	}
	pinned, err := NewRunner(Config{N: 1, Machine: haltingMachine, NoRecycle: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pinned.Close()
	if pinned.mem.recycleOK {
		t.Error("NoRecycle runner still recycles")
	}
}

// TestMutatorSeesOldValue: MutateWrite receives the register's pre-write
// content and the intended value, and what it returns is what lands (both
// in memory and in the OnWrite callback).
func TestMutatorSeesOldValue(t *testing.T) {
	t.Parallel()
	type obs struct {
		old, value any
	}
	var seen []obs
	var landed []any
	d := &hookDirector{
		mutate: func(old, value any) any {
			seen = append(seen, obs{old, value})
			if v, ok := value.(int); ok {
				return v + 100
			}
			return value
		},
		onWrite: func(v any) { landed = append(landed, v) },
	}
	r, err := NewRunner(Config{N: 1, NoRecycle: true, Machine: func(p procset.ID, regs Registry) Machine {
		x := regs.Reg("x")
		i := 0
		return MachineFunc(func(prev any) (Op, bool) {
			i++
			if i > 2 {
				return Op{}, false
			}
			return WriteOp(x, i), true
		})
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.RunDirected(d, 3, 0, nil)
	if len(seen) != 2 || seen[0] != (obs{nil, 1}) || seen[1] != (obs{101, 2}) {
		t.Errorf("mutator observations %+v, want [{<nil> 1} {101 2}]", seen)
	}
	if len(landed) != 2 || landed[0] != 101 || landed[1] != 102 {
		t.Errorf("OnWrite saw %v, want the mutated values [101 102]", landed)
	}
	if got := r.mem.values[r.mem.idOf("x")]; got != 102 {
		t.Errorf("register holds %v, want the mutated 102", got)
	}
}

// hookDirector adapts closures to DirectorRW for single-process tests.
type hookDirector struct {
	mutate  func(old, value any) any
	onWrite func(v any)
}

func (d *hookDirector) Next() procset.ID                            { return 1 }
func (d *hookDirector) OnWrite(slot RegID, p procset.ID, value any) { d.onWrite(value) }
func (d *hookDirector) MutateWrite(slot RegID, p procset.ID, old, value any) any {
	return d.mutate(old, value)
}
