package sim

import (
	"testing"

	"github.com/settimeliness/settimeliness/internal/procset"
	"github.com/settimeliness/settimeliness/internal/sched"
)

// runnerFingerprint captures everything about a run that the harness can
// observe without an observer: the global step count, per-process progress,
// and halt flags.
type runnerFingerprint struct {
	steps  int
	taken  []int
	halted []bool
}

func fingerprint(r *Runner, n int) runnerFingerprint {
	fp := runnerFingerprint{steps: r.Steps()}
	for p := 1; p <= n; p++ {
		fp.taken = append(fp.taken, r.StepsTaken(procset.ID(p)))
		fp.halted = append(fp.halted, r.Halted(procset.ID(p)))
	}
	return fp
}

func sameFingerprint(t *testing.T, label string, a, b runnerFingerprint) {
	t.Helper()
	if a.steps != b.steps {
		t.Fatalf("%s: step counts differ: %d vs %d", label, a.steps, b.steps)
	}
	for i := range a.taken {
		if a.taken[i] != b.taken[i] || a.halted[i] != b.halted[i] {
			t.Fatalf("%s: p%d progress differs: (%d,%v) vs (%d,%v)", label, i+1,
				a.taken[i], a.halted[i], b.taken[i], b.halted[i])
		}
	}
}

// TestRunBatchMatchesStepLoop pins the batch loop's contract: RunBatch on a
// machine runner produces the same RunResult and the same runner state as
// stepping the identical schedule one Step call at a time.
func TestRunBatchMatchesStepLoop(t *testing.T) {
	t.Parallel()
	const n, maxSteps, checkEvery = 4, 5000, 37
	stopAt := 70 // steps taken by p1 that trigger the stop predicate

	build := func() *Runner {
		r, err := NewRunner(Config{N: n, Machine: counterMachine})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(r.Close)
		return r
	}
	schedule := func() sched.Source {
		src, err := sched.Random(n, 42, map[procset.ID]int{4: 100})
		if err != nil {
			t.Fatal(err)
		}
		return src
	}

	batch := build()
	stop := func(r *Runner) func() bool {
		return func() bool { return r.StepsTaken(1) >= stopAt }
	}
	gotRes := batch.RunBatch(schedule(), maxSteps, checkEvery, stop(batch))

	// Reference: the per-step loop over the same schedule and predicate.
	ref := build()
	src := schedule()
	wantRes := RunResult{Steps: maxSteps}
	for i := 0; i < maxSteps; i++ {
		ref.Step(src.Next())
		if (i+1)%checkEvery == 0 && ref.StepsTaken(1) >= stopAt {
			wantRes = RunResult{Steps: i + 1, Stopped: true}
			break
		}
	}
	if gotRes != wantRes {
		t.Fatalf("RunBatch result %+v, step loop %+v", gotRes, wantRes)
	}
	sameFingerprint(t, "batch vs step loop", fingerprint(batch, n), fingerprint(ref, n))
}

// TestRunBatchMatchesGenericLoop cross-checks the two Run loops on the same
// machine config: an observer forces the generic loop, whose observable
// outcome must match the batched loop's.
func TestRunBatchMatchesGenericLoop(t *testing.T) {
	t.Parallel()
	const n, maxSteps, checkEvery = 3, 4000, 100
	run := func(withObserver bool) (RunResult, runnerFingerprint) {
		cfg := Config{N: n, Machine: counterMachine}
		if withObserver {
			cfg.Observer = func(StepInfo) {}
		}
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		src, err := sched.Random(n, 7, nil)
		if err != nil {
			t.Fatal(err)
		}
		res := r.Run(src, maxSteps, checkEvery, func() bool { return r.Steps() >= 2500 })
		return res, fingerprint(r, n)
	}
	fastRes, fastFP := run(false)
	slowRes, slowFP := run(true)
	if fastRes != slowRes {
		t.Fatalf("batched result %+v, generic result %+v", fastRes, slowRes)
	}
	sameFingerprint(t, "batched vs generic", fastFP, slowFP)
}

// TestRunScheduleBatchMatchesStep pins the RunSchedule fast path, including
// machines that halt mid-schedule.
func TestRunScheduleBatchMatchesStep(t *testing.T) {
	t.Parallel()
	const n = 2
	src, err := sched.Random(n, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.Take(src, 50)

	batch, err := NewRunner(Config{N: n, Machine: haltingMachine})
	if err != nil {
		t.Fatal(err)
	}
	defer batch.Close()
	batch.RunSchedule(s)

	ref, err := NewRunner(Config{N: n, Machine: haltingMachine})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, p := range s {
		ref.Step(p)
	}
	sameFingerprint(t, "RunSchedule vs Step", fingerprint(batch, n), fingerprint(ref, n))
}

// BenchmarkRunBatch is the batch loop's headline number: the same machine
// workload driven by Step in a loop, by the generic Run loop (observer
// present), and by the batched fast path.
func BenchmarkRunBatch(b *testing.B) {
	const n = 4
	newSrc := func(b *testing.B) sched.Source {
		src, err := sched.Random(n, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		return src
	}
	b.Run("step-loop", func(b *testing.B) {
		r, err := NewRunner(Config{N: n, Machine: counterMachine})
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		src := newSrc(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Step(src.Next())
		}
	})
	b.Run("generic-run", func(b *testing.B) {
		r, err := NewRunner(Config{N: n, Machine: counterMachine, Observer: func(StepInfo) {}})
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		src := newSrc(b)
		b.ResetTimer()
		r.Run(src, b.N, 500, func() bool { return false })
	})
	b.Run("batch", func(b *testing.B) {
		r, err := NewRunner(Config{N: n, Machine: counterMachine})
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		src := newSrc(b)
		b.ResetTimer()
		r.RunBatch(src, b.N, 500, func() bool { return false })
	})
}
