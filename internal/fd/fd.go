// Package fd defines the failure-detector abstractions of §4.1 of the paper:
// the t-resilient k-anti-Ω detector and the run-level checker for its
// defining property.
//
// With t-resilient k-anti-Ω, every process p continuously outputs a set
// fdOutput_p of n−k processes such that: if at most t processes are faulty,
// then there is a correct process c and a time after which, for every
// correct process p, c ∉ fdOutput_p. For t = n−1 this is Zieliński's
// k-anti-Ω; for k = 1 it is (the complement view of) Ω.
package fd

import (
	"fmt"

	"github.com/settimeliness/settimeliness/internal/procset"
)

// OutputEvent records that process Proc changed its detector output to
// Output at step Step of the run.
type OutputEvent struct {
	Step   int
	Proc   procset.ID
	Output procset.Set
}

// History accumulates detector output changes over a run, for later property
// checking. The zero value is ready to use.
type History struct {
	n      int
	events []OutputEvent
}

// NewHistory returns a history for a system of n processes.
func NewHistory(n int) *History { return &History{n: n} }

// Record appends an output change. Records must arrive in nondecreasing step
// order.
func (h *History) Record(step int, proc procset.ID, output procset.Set) {
	h.events = append(h.events, OutputEvent{Step: step, Proc: proc, Output: output})
}

// Reset discards all recorded events (keeping capacity) so the history can
// be reused across runs of a pooled simulator.
func (h *History) Reset() { h.events = h.events[:0] }

// Events returns the recorded events (not a copy; callers must not mutate).
func (h *History) Events() []OutputEvent { return h.events }

// Len returns the number of recorded events.
func (h *History) Len() int { return len(h.events) }

// Verdict is the result of checking the k-anti-Ω property on a run.
type Verdict struct {
	// Holds reports whether the property was satisfied on the observed run.
	Holds bool
	// Witness is a correct process that is eventually never output by any
	// correct process (valid only when Holds).
	Witness procset.ID
	// StableFrom is the first step from which every correct process's output
	// excludes Witness (valid only when Holds).
	StableFrom int
	// Reason explains a failed check.
	Reason string
}

// Check verifies the t-resilient k-anti-Ω property on a finite run: it
// searches for a correct process c such that, from some observed step on,
// every output of every correct process excludes c. Every correct process
// must have produced at least one output, all outputs must have exactly
// n−k members, and the run must actually exhibit the stable suffix.
//
// correct is the set of processes that are correct in the run's schedule.
func (h *History) Check(k int, correct procset.Set) Verdict {
	if correct.IsEmpty() {
		return Verdict{Reason: "no correct process"}
	}
	wantSize := h.n - k
	seen := procset.EmptySet
	for _, ev := range h.events {
		if ev.Output.Size() != wantSize {
			return Verdict{Reason: fmt.Sprintf(
				"step %d: %v output %v has %d members, want n-k = %d",
				ev.Step, ev.Proc, ev.Output, ev.Output.Size(), wantSize)}
		}
		if correct.Contains(ev.Proc) {
			seen = seen.Add(ev.Proc)
		}
	}
	if !correct.SubsetOf(seen) {
		return Verdict{Reason: fmt.Sprintf(
			"correct processes %v produced no output", correct.Minus(seen))}
	}
	// The current output of p is its latest recorded event. A witness is a
	// correct c excluded from every correct process's current output; its
	// stabilization point is just after the last time any correct process
	// still included it.
	final := make(map[procset.ID]procset.Set, correct.Size())
	for _, ev := range h.events {
		if correct.Contains(ev.Proc) {
			final[ev.Proc] = ev.Output
		}
	}
	best := Verdict{Reason: "no correct process is eventually excluded by all correct processes"}
	for _, c := range correct.Members() {
		excludedNow := true
		for _, out := range final {
			if out.Contains(c) {
				excludedNow = false
				break
			}
		}
		if !excludedNow {
			continue
		}
		stableFrom := 0
		for _, ev := range h.events {
			if correct.Contains(ev.Proc) && ev.Output.Contains(c) && ev.Step+1 > stableFrom {
				stableFrom = ev.Step + 1
			}
		}
		if !best.Holds || stableFrom < best.StableFrom {
			best = Verdict{Holds: true, Witness: c, StableFrom: stableFrom}
		}
	}
	return best
}

// Leader interprets a winnerset of size 1 as an Ω leader. It returns 0 when
// the set is not a singleton.
func Leader(winnerset procset.Set) procset.ID {
	if winnerset.Size() != 1 {
		return 0
	}
	return winnerset.Min()
}
