package fd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/settimeliness/settimeliness/internal/procset"
)

// TestQuickCheckConsistency exercises Check on synthetic histories: whenever
// it reports a witness, replaying the history confirms no correct process's
// final output contains the witness and the StableFrom step is exact.
func TestQuickCheckConsistency(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		k := 1 + rng.Intn(n-1)
		var correct procset.Set
		for correct.Size() < 1+rng.Intn(n) {
			correct = correct.Add(procset.ID(rng.Intn(n) + 1))
		}
		h := NewHistory(n)
		events := 1 + rng.Intn(30)
		step := 0
		for e := 0; e < events; e++ {
			step += rng.Intn(5)
			p := procset.ID(rng.Intn(n) + 1)
			out, err := procset.UnrankKSubset(rng.Intn(procset.Binomial(n, n-k)), n-k, n)
			if err != nil {
				return false
			}
			h.Record(step, p, out)
		}
		v := h.Check(k, correct)
		if !v.Holds {
			return true
		}
		// Replay: the witness must be correct, excluded from every correct
		// process's final output, and included in some correct process's
		// output at step v.StableFrom-1 if StableFrom > 0.
		if !correct.Contains(v.Witness) {
			return false
		}
		final := make(map[procset.ID]procset.Set)
		lastIncl := -1
		for _, ev := range h.Events() {
			if !correct.Contains(ev.Proc) {
				continue
			}
			final[ev.Proc] = ev.Output
			if ev.Output.Contains(v.Witness) && ev.Step > lastIncl {
				lastIncl = ev.Step
			}
		}
		for _, out := range final {
			if out.Contains(v.Witness) {
				return false
			}
		}
		return v.StableFrom == lastIncl+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
