package fd

import (
	"testing"

	"github.com/settimeliness/settimeliness/internal/procset"
)

func TestCheckHoldsSimpleConvergence(t *testing.T) {
	t.Parallel()
	// n=4, k=2: outputs have 2 members. Processes 1,2,3 correct; process 3
	// is eventually excluded by everyone.
	h := NewHistory(4)
	correct := procset.MakeSet(1, 2, 3)
	h.Record(10, 1, procset.MakeSet(3, 4)) // initially includes 3
	h.Record(12, 2, procset.MakeSet(1, 4))
	h.Record(14, 3, procset.MakeSet(2, 4))
	h.Record(20, 1, procset.MakeSet(2, 4)) // 1 switches away from 3
	v := h.Check(2, correct)
	if !v.Holds {
		t.Fatalf("Check failed: %s", v.Reason)
	}
	if v.Witness != 3 {
		t.Errorf("witness = %v, want p3", v.Witness)
	}
	if v.StableFrom != 11 {
		t.Errorf("StableFrom = %d, want 11 (p1 last included 3 at step 10)", v.StableFrom)
	}
}

func TestCheckPrefersEarliestStableWitness(t *testing.T) {
	t.Parallel()
	h := NewHistory(3)
	correct := procset.MakeSet(1, 2)
	// k=1: outputs have 2 members. Both 1 and... only excluded correct
	// processes can be witnesses. Output {2,3} excludes 1; output {1,3}
	// excludes 2.
	h.Record(5, 1, procset.MakeSet(2, 3))
	h.Record(6, 2, procset.MakeSet(2, 3))
	v := h.Check(1, correct)
	if !v.Holds || v.Witness != 1 || v.StableFrom != 0 {
		t.Fatalf("verdict = %+v, want witness p1 from step 0", v)
	}
}

func TestCheckFailsWhenNoCommonExclusion(t *testing.T) {
	t.Parallel()
	h := NewHistory(3)
	correct := procset.MakeSet(1, 2)
	// p1 excludes p2 forever; p2 excludes p1 forever; crashed p3 is not a
	// valid witness.
	h.Record(1, 1, procset.MakeSet(2, 3))
	h.Record(2, 2, procset.MakeSet(1, 3))
	v := h.Check(1, correct)
	if v.Holds {
		t.Fatalf("Check held with witness %v", v.Witness)
	}
}

func TestCheckFailsOnWrongOutputSize(t *testing.T) {
	t.Parallel()
	h := NewHistory(4)
	h.Record(1, 1, procset.MakeSet(2))
	v := h.Check(2, procset.MakeSet(1))
	if v.Holds || v.Reason == "" {
		t.Fatalf("verdict = %+v, want size failure", v)
	}
}

func TestCheckFailsWhenCorrectProcessSilent(t *testing.T) {
	t.Parallel()
	h := NewHistory(3)
	correct := procset.MakeSet(1, 2)
	h.Record(1, 1, procset.MakeSet(2, 3))
	v := h.Check(1, correct)
	if v.Holds {
		t.Fatal("Check held although p2 never produced output")
	}
}

func TestCheckFailsOnEmptyCorrectSet(t *testing.T) {
	t.Parallel()
	h := NewHistory(3)
	if v := h.Check(1, procset.EmptySet); v.Holds {
		t.Fatal("Check held with no correct process")
	}
}

func TestCheckIgnoresFaultyOutputsForWitness(t *testing.T) {
	t.Parallel()
	// A faulty process may include the witness forever; only correct
	// processes' outputs matter.
	h := NewHistory(3)
	correct := procset.MakeSet(1, 2)
	h.Record(1, 1, procset.MakeSet(2, 3)) // excludes 1
	h.Record(2, 2, procset.MakeSet(2, 3)) // hmm: p2 includes itself; excludes 1
	h.Record(3, 3, procset.MakeSet(1, 2)) // faulty p3 includes 1 — irrelevant
	v := h.Check(1, correct)
	if !v.Holds || v.Witness != 1 {
		t.Fatalf("verdict = %+v, want witness p1", v)
	}
}

func TestLeader(t *testing.T) {
	t.Parallel()
	if got := Leader(procset.MakeSet(4)); got != 4 {
		t.Errorf("Leader = %v, want p4", got)
	}
	if got := Leader(procset.MakeSet(1, 2)); got != 0 {
		t.Errorf("Leader of pair = %v, want 0", got)
	}
	if got := Leader(procset.EmptySet); got != 0 {
		t.Errorf("Leader of empty = %v, want 0", got)
	}
}

func TestHistoryAccessors(t *testing.T) {
	t.Parallel()
	h := NewHistory(3)
	if h.Len() != 0 {
		t.Error("fresh history not empty")
	}
	h.Record(1, 1, procset.MakeSet(2, 3))
	if h.Len() != 1 || len(h.Events()) != 1 {
		t.Error("event not recorded")
	}
	ev := h.Events()[0]
	if ev.Step != 1 || ev.Proc != 1 || ev.Output != procset.MakeSet(2, 3) {
		t.Errorf("event = %+v", ev)
	}
}
