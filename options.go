// The unified functional-options surface: Solve and RunDetector take a
// context plus Option values, layered over the classic SolveConfig /
// DetectorConfig structs (which stay — embedded in the merged option state
// and still usable wholesale via WithSolveConfig / WithDetectorConfig).
// Shared knobs (Seed, MaxSteps, Crashes, TimelinessBound) set both embedded
// configs, so one option list parameterizes either entry point.
//
// The Network option swaps RunDetector's substrate: instead of the
// register-plane Figure 2 anti-Ω detector in S^k_{t+1,n}, it runs the
// message-plane heartbeat Ω detector over a named msgnet link-grade matrix
// (sync, psync, async, or mixed). The result maps onto DetectorResult with
// Winnerset holding the single elected leader; Witness and StableFrom are
// register-plane-specific and stay zero.

package settimeliness

import (
	"context"
	"fmt"

	"github.com/settimeliness/settimeliness/internal/msgnet"
	"github.com/settimeliness/settimeliness/internal/procset"
	"github.com/settimeliness/settimeliness/internal/sched"
	"github.com/settimeliness/settimeliness/internal/sim"
)

// runConfig is the merged option state. Both classic config structs are
// embedded; field names collide (Seed, MaxSteps, ...), so access is always
// qualified and shared options write through to both.
type runConfig struct {
	SolveConfig
	DetectorConfig
	network *NetworkConfig
}

// Option configures a Solve or RunDetector call.
type Option func(*runConfig)

// WithSolveConfig replaces the embedded SolveConfig wholesale — the bridge
// from the struct-based API.
func WithSolveConfig(cfg SolveConfig) Option {
	return func(rc *runConfig) { rc.SolveConfig = cfg }
}

// WithDetectorConfig replaces the embedded DetectorConfig wholesale — the
// bridge from the struct-based API.
func WithDetectorConfig(cfg DetectorConfig) Option {
	return func(rc *runConfig) { rc.DetectorConfig = cfg }
}

// WithProblem selects the (t,k,n)-agreement instance for Solve, and sizes
// the detector to the problem's matching parameters as a side effect.
func WithProblem(p Problem) Option {
	return func(rc *runConfig) {
		rc.SolveConfig.Problem = p
		rc.DetectorConfig.N, rc.DetectorConfig.K, rc.DetectorConfig.T = p.N, p.K, p.T
	}
}

// WithSystem selects the S^i_{j,n} schedule generator for Solve; the zero
// value means the problem's matching system.
func WithSystem(sys SystemID) Option {
	return func(rc *runConfig) { rc.SolveConfig.System = sys }
}

// WithProposals sets the initial values for Solve; nil means "v<p>".
func WithProposals(proposals map[ProcID]any) Option {
	return func(rc *runConfig) { rc.SolveConfig.Proposals = proposals }
}

// WithDetector sizes t-resilient k-anti-Ω for RunDetector. With the Network
// option only n is used (the heartbeat detector has no k or t).
func WithDetector(n, k, t int) Option {
	return func(rc *runConfig) {
		rc.DetectorConfig.N, rc.DetectorConfig.K, rc.DetectorConfig.T = n, k, t
	}
}

// WithCrashes maps processes to the number of steps they take before
// crashing.
func WithCrashes(crashes map[ProcID]int) Option {
	return func(rc *runConfig) {
		rc.SolveConfig.Crashes = crashes
		rc.DetectorConfig.Crashes = crashes
	}
}

// WithSeed makes the run reproducible.
func WithSeed(seed int64) Option {
	return func(rc *runConfig) {
		rc.SolveConfig.Seed = seed
		rc.DetectorConfig.Seed = seed
	}
}

// WithMaxSteps bounds the run; 0 means a generous default.
func WithMaxSteps(steps int) Option {
	return func(rc *runConfig) {
		rc.SolveConfig.MaxSteps = steps
		rc.DetectorConfig.MaxSteps = steps
	}
}

// WithTimelinessBound sets the Definition 1 constant enforced by the
// register-plane schedule generators; 0 means 4. The message plane's
// timeliness lives in the link grades instead, so Network runs ignore it.
func WithTimelinessBound(bound int) Option {
	return func(rc *runConfig) {
		rc.SolveConfig.TimelinessBound = bound
		rc.DetectorConfig.TimelinessBound = bound
	}
}

// NetworkConfig selects a message-passing substrate for RunDetector: a named
// msgnet link-grade matrix under the heartbeat Ω detector.
type NetworkConfig struct {
	// Matrix names the link-grade matrix ("sync", "psync", "async",
	// "mixed"); "" means mixed — three distinct grades plus one
	// interval-varying link.
	Matrix string
	// Delta bounds the timely grades' delivery delay; 0 means 2.
	Delta int
	// GST is the partially synchronous grades' stabilization step; 0 means
	// MaxSteps/4.
	GST int
	// Wild bounds deliveries outside any timeliness guarantee; 0 means the
	// msgnet default.
	Wild int
}

// Network routes RunDetector onto the message plane: the heartbeat Ω
// detector over the configured link-grade matrix, scheduled by the same
// deterministic seed. Solve rejects it — the paper's agreement construction
// is register-based.
func Network(nc NetworkConfig) Option {
	return func(rc *runConfig) { rc.network = &nc }
}

func applyOptions(ctx context.Context, opts []Option) (context.Context, runConfig) {
	if ctx == nil {
		ctx = context.Background()
	}
	var rc runConfig
	for _, opt := range opts {
		if opt != nil {
			opt(&rc)
		}
	}
	return ctx, rc
}

// Solve runs the paper's positive construction for the configured problem
// and system on a simulated shared memory, then verifies uniform
// k-agreement, uniform validity, and (within the crash budget) termination.
// It returns an error if the combination is unsolvable (Theorem 27), if the
// configuration is invalid, if the context is cancelled, or if the run
// violates a property.
func Solve(ctx context.Context, opts ...Option) (SolveResult, error) {
	ctx, rc := applyOptions(ctx, opts)
	if rc.network != nil {
		return SolveResult{}, fmt.Errorf("settimeliness: the Network option applies to RunDetector only (the agreement construction is register-based)")
	}
	return solve(ctx, rc.SolveConfig)
}

// RunDetector runs a failure-detector workload and checks its property on
// the recorded run. By default that is the Figure 2 implementation of
// t-resilient k-anti-Ω in its matching system S^k_{t+1,n} on the register
// plane; with the Network option it is the heartbeat Ω detector over a
// graded message network instead.
func RunDetector(ctx context.Context, opts ...Option) (DetectorResult, error) {
	ctx, rc := applyOptions(ctx, opts)
	if rc.network != nil {
		return runNetworkDetector(ctx, rc.DetectorConfig, *rc.network)
	}
	return runDetector(ctx, rc.DetectorConfig)
}

// runNetworkDetector is the Network-option path: heartbeat Ω over a named
// link-grade matrix, with the same stability contract as the register path
// (a streak of identical Agree outputs across checkpoints).
func runNetworkDetector(ctx context.Context, cfg DetectorConfig, nc NetworkConfig) (DetectorResult, error) {
	var out DetectorResult
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 2_000_000
	}
	matrix := nc.Matrix
	if matrix == "" {
		matrix = msgnet.MatrixMixed
	}
	delta := nc.Delta
	if delta == 0 {
		delta = 2
	}
	gst := nc.GST
	if gst == 0 {
		gst = maxSteps / 4
	}
	def, links, err := msgnet.BuildMatrix(matrix, cfg.N, delta, gst)
	if err != nil {
		return out, err
	}
	net, err := msgnet.New(msgnet.Config{
		N:       cfg.N,
		Default: def,
		Links:   links,
		Seed:    cfg.Seed,
		Wild:    nc.Wild,
	})
	if err != nil {
		return out, err
	}
	hb, err := msgnet.NewHeartbeat(msgnet.HeartbeatConfig{N: cfg.N})
	if err != nil {
		return out, err
	}
	runner, err := sim.NewRunner(sim.Config{N: cfg.N, Machine: hb.Machine, Network: net})
	if err != nil {
		return out, err
	}
	defer runner.Close()

	src, err := sched.Random(cfg.N, cfg.Seed, cfg.Crashes)
	if err != nil {
		return out, err
	}
	correct := src.Correct()
	streak := 0
	var last procset.ID
	res := runner.Run(src, maxSteps, 500, func() bool {
		if ctx.Err() != nil {
			return true
		}
		l, ok := hb.Agree(correct)
		if !ok {
			streak = 0
			return false
		}
		if l == last {
			streak++
		} else {
			last, streak = l, 1
		}
		return streak >= 20
	})
	if err := ctx.Err(); err != nil {
		return out, err
	}
	out.Steps = runner.Steps()
	if leader, ok := hb.Agree(correct); ok && res.Stopped {
		out.Stable = true
		out.Winnerset = NewSet(leader)
	}
	return out, nil
}
