// Live runtime: the same Figure 2 + agreement stack, but on real goroutines
// with real shared memory. The schedule is whatever the Go scheduler
// produces, shaped only by a real-time governor that enforces the paper's
// set-timeliness guarantee ({p1,p2} timely w.r.t. {p1,p2,p3} — i.e. the run
// stays inside S^2_{3,5}) and by a crash injector. Afterwards the recorded
// schedule is analyzed with the same Definition 1 tools used by the
// deterministic experiments.
//
//	go run ./examples/liveruntime
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/settimeliness/settimeliness/internal/kset"
	"github.com/settimeliness/settimeliness/internal/live"
	"github.com/settimeliness/settimeliness/internal/procset"
	"github.com/settimeliness/settimeliness/internal/sched"
)

func main() {
	const n = 5
	cfg := kset.Config{N: n, K: 2, T: 2}
	ag, err := kset.New(cfg, func(p procset.ID, v any) {
		fmt.Printf("  %v decided %v\n", p, v)
	})
	if err != nil {
		log.Fatal(err)
	}

	p := procset.MakeSet(1, 2)
	q := procset.MakeSet(1, 2, 3)
	rt, err := live.New(live.Config{
		N:         n,
		Algorithm: ag.Algorithm(func(pid procset.ID) any { return fmt.Sprintf("v%d", pid) }),
		P:         p, Q: q, Bound: 8,
		CrashAfterOps: map[procset.ID]int{4: 500, 5: 100},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running (2,2,%d)-agreement on goroutines, governed into S^2_{3,%d}, p4 and p5 crashing:\n", n, n)
	start := time.Now()
	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	correct := procset.MakeSet(1, 2, 3)
	decided := rt.WaitUntil(func() bool {
		return correct.SubsetOf(ag.DecidedSet())
	}, time.Millisecond, 30*time.Second)
	rt.Stop()
	if !decided {
		log.Fatalf("correct processes did not decide (decided %v)", ag.DecidedSet())
	}
	fmt.Printf("all correct processes decided in %v wall time\n\n", time.Since(start).Round(time.Millisecond))

	s := rt.Schedule()
	fmt.Printf("recorded schedule: %d operations, participants %v\n", len(s), s.Participants())
	fmt.Printf("governed relation holds: MaxQGap(%v, %v) = %d (< 8)\n", p, q, sched.MaxQGap(s, p, q))
	fmt.Printf("distinct decisions: %d (allowed: %d)\n", ag.DistinctDecisions(), cfg.K)
	best := sched.BestPair(s[:min(len(s), 20000)], n, 2, 3)
	fmt.Printf("best (i=2, j=3) pair in the wild schedule: P=%v Q=%v bound=%d\n", best.P, best.Q, best.MinBound)
}
