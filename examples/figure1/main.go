// Figure 1 of the paper, interactively: the schedule
// S = [(p1·q)^i (p2·q)^i] keeps both singletons {p1} and {p2} non-timely
// with respect to {q} — their minimal Definition 1 bounds diverge — while
// the virtual process {p1,p2} stays timely with bound 2.
//
//	go run ./examples/figure1
package main

import (
	"fmt"

	stm "github.com/settimeliness/settimeliness"
)

func main() {
	p1 := stm.NewSet(1)
	p2 := stm.NewSet(2)
	pair := stm.NewSet(1, 2)
	q := stm.NewSet(3)

	fmt.Println("S = [(p1·q)^i (p2·q)^i], growing prefixes:")
	fmt.Printf("%8s %8s %14s %14s %18s\n", "rounds", "steps", "bound({p1})", "bound({p2})", "bound({p1,p2})")
	for rounds := 2; rounds <= 128; rounds *= 2 {
		s := stm.Figure1Prefix(1, 2, 3, rounds)
		fmt.Printf("%8d %8d %14d %14d %18d\n",
			rounds, len(s),
			stm.MinBound(s, p1, q),
			stm.MinBound(s, p2, q),
			stm.MinBound(s, pair, q))
	}
	fmt.Println()
	fmt.Println("the singletons' bounds grow without limit: no Definition 1 constant exists;")
	fmt.Println("the pair, viewed as one virtual process, is timely with bound 2 forever.")

	s := stm.Figure1Prefix(1, 2, 3, 3)
	fmt.Printf("\nfirst three rounds: %v\n", s)
	fmt.Printf("pair timely with bound 2? %v\n", stm.IsTimely(s, pair, q, 2))
	fmt.Printf("p1 timely with bound 2?   %v\n", stm.IsTimely(s, p1, q, 2))
}
