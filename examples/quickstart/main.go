// Quickstart: solve 2-resilient 2-set agreement among six processes in the
// matching partially synchronous system S^2_{3,6}, with two crashes.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	stm "github.com/settimeliness/settimeliness"
)

func main() {
	problem := stm.NewProblem(2, 2, 6) // t=2 crashes tolerated, k=2 values, n=6
	fmt.Printf("problem:   %v\n", problem)
	fmt.Printf("matching:  %v (Theorem 24: weakest system of the family that solves it)\n",
		stm.MatchingSystem(2, 2, 6))

	res, err := stm.Solve(context.Background(),
		stm.WithProblem(problem),
		stm.WithCrashes(map[stm.ProcID]int{5: 40, 6: 0}), // p5 crashes after 40 steps, p6 never runs
		stm.WithSeed(1))
	if err != nil {
		log.Fatalf("solve: %v", err)
	}

	fmt.Printf("correct:   %v\n", res.Correct)
	fmt.Printf("steps:     %d\n", res.Steps)
	fmt.Printf("distinct:  %d (allowed: 2)\n", res.Distinct)
	for p := stm.ProcID(1); p <= 6; p++ {
		if v, ok := res.Decisions[p]; ok {
			fmt.Printf("  %v decided %v\n", p, v)
		} else {
			fmt.Printf("  %v crashed before deciding\n", p)
		}
	}
}
