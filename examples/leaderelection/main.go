// Leader election and consensus from set timeliness: with k = 1 the
// t-resilient k-anti-Ω detector of Figure 2 is an eventual leader oracle
// (the winnerset is a single, eventually common, correct process — the
// complement view of Ω), and (t,1,n)-agreement is consensus.
//
//	go run ./examples/leaderelection
package main

import (
	"context"
	"fmt"
	"log"

	stm "github.com/settimeliness/settimeliness"
)

func main() {
	// Five processes, one may crash: consensus needs S^1_{2,5} — a single
	// process timely with respect to one other process.
	fmt.Printf("matching system for consensus (t=1, n=5): %v\n\n", stm.MatchingSystem(1, 1, 5))

	det, err := stm.RunDetector(context.Background(),
		stm.WithDetector(5, 1, 1),
		stm.WithCrashes(map[stm.ProcID]int{2: 60}),
		stm.WithSeed(4))
	if err != nil {
		log.Fatalf("detector: %v", err)
	}
	fmt.Printf("Ω stabilized: leader %v elected after %d steps (witness %v from step %d)\n",
		det.Winnerset, det.Steps, det.Witness, det.StableFrom)

	// The same question on the message plane: the heartbeat Ω detector over
	// a mixed-grade link matrix (three grades, one link changing grade
	// mid-run) instead of the register-plane Figure 2 construction.
	netdet, err := stm.RunDetector(context.Background(),
		stm.WithDetector(5, 1, 1),
		stm.WithSeed(4),
		stm.WithMaxSteps(200_000),
		stm.Network(stm.NetworkConfig{Matrix: "mixed"}))
	if err != nil {
		log.Fatalf("network detector: %v", err)
	}
	fmt.Printf("heartbeat Ω on the mixed matrix: stable=%v leader %v after %d steps\n",
		netdet.Stable, netdet.Winnerset, netdet.Steps)

	res, err := stm.Solve(context.Background(),
		stm.WithProblem(stm.NewProblem(1, 1, 5)),
		stm.WithProposals(map[stm.ProcID]any{1: "red", 2: "green", 3: "blue", 4: "yellow", 5: "cyan"}),
		stm.WithCrashes(map[stm.ProcID]int{2: 60}),
		stm.WithSeed(4))
	if err != nil {
		log.Fatalf("consensus: %v", err)
	}
	fmt.Printf("\nconsensus reached in %d steps on %d value:\n", res.Steps, res.Distinct)
	for p := stm.ProcID(1); p <= 5; p++ {
		if v, ok := res.Decisions[p]; ok {
			fmt.Printf("  %v decided %v\n", p, v)
		}
	}
}
