// Walk the Theorem 27 frontier: for (t,k,n) = (3,2,5), print the full
// (i,j) solvability matrix and demonstrate both sides of the boundary by
// running the solver in a solvable cell and asking for an unsolvable one.
//
//	go run ./examples/boundary
package main

import (
	"context"
	"fmt"
	"log"

	stm "github.com/settimeliness/settimeliness"
)

func main() {
	t, k, n := 3, 2, 5
	fmt.Printf("Theorem 27 for (t,k,n) = (%d,%d,%d): solvable in S^i_{j,%d} iff i ≤ %d and j−i ≥ %d\n\n",
		t, k, n, n, k, t+1-k)

	fmt.Print("      ")
	for j := 1; j <= n; j++ {
		fmt.Printf("  j=%d", j)
	}
	fmt.Println()
	for i := 1; i <= n; i++ {
		fmt.Printf("  i=%d ", i)
		for j := 1; j <= n; j++ {
			if j < i {
				fmt.Print("    -")
				continue
			}
			ok, err := stm.Solvable(t, k, n, i, j)
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				fmt.Print("    Y")
			} else {
				fmt.Print("    .")
			}
		}
		fmt.Println()
	}

	fmt.Printf("\nsolving in the boundary cell %v...\n", stm.Sij(2, 4, 5))
	res, err := stm.Solve(context.Background(),
		stm.WithProblem(stm.NewProblem(t, k, n)),
		stm.WithSystem(stm.Sij(2, 4, 5)),
		stm.WithCrashes(map[stm.ProcID]int{4: 30, 5: 0}),
		stm.WithSeed(2))
	if err != nil {
		log.Fatalf("solve: %v", err)
	}
	fmt.Printf("decided: %v values across %v in %d steps\n", res.Distinct, res.Correct, res.Steps)

	fmt.Printf("\nasking for the cell just past the frontier, %v:\n", stm.Sij(2, 3, 5))
	if _, err := stm.Solve(context.Background(),
		stm.WithProblem(stm.NewProblem(t, k, n)),
		stm.WithSystem(stm.Sij(2, 3, 5))); err != nil {
		fmt.Printf("rejected as expected: %v\n", err)
	} else {
		log.Fatal("unsolvable cell was accepted")
	}
}
