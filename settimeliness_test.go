package settimeliness

import (
	"context"
	"testing"
)

func TestSolvablePredicateAPI(t *testing.T) {
	t.Parallel()
	tests := []struct {
		t, k, n, i, j int
		want          bool
	}{
		{2, 2, 4, 2, 3, true},  // matching system
		{3, 2, 5, 2, 3, false}, // j−i too small
		{2, 2, 5, 3, 5, false}, // i > k
		{1, 2, 3, 1, 1, true},  // k ≥ t+1 anywhere
		{3, 2, 6, 2, 4, true},  // boundary j−i = t+1−k
	}
	for _, tc := range tests {
		got, err := Solvable(tc.t, tc.k, tc.n, tc.i, tc.j)
		if err != nil {
			t.Fatalf("Solvable(%d,%d,%d,%d,%d): %v", tc.t, tc.k, tc.n, tc.i, tc.j, err)
		}
		if got != tc.want {
			t.Errorf("Solvable(%d,%d,%d,%d,%d) = %v, want %v", tc.t, tc.k, tc.n, tc.i, tc.j, got, tc.want)
		}
	}
	if _, err := Solvable(0, 1, 3, 1, 1); err == nil {
		t.Error("invalid t accepted")
	}
}

func TestMatchingSystemAPI(t *testing.T) {
	t.Parallel()
	if got := MatchingSystem(2, 2, 4); got != Sij(2, 3, 4) {
		t.Errorf("MatchingSystem(2,2,4) = %v", got)
	}
	if got := MatchingSystem(1, 2, 4); got != Sij(1, 1, 4) {
		t.Errorf("MatchingSystem for trivial case = %v, want asynchronous", got)
	}
}

func TestScheduleAnalysisAPI(t *testing.T) {
	t.Parallel()
	s := Figure1Prefix(1, 2, 3, 10)
	if !IsTimely(s, NewSet(1, 2), NewSet(3), 2) {
		t.Error("pair should be timely with bound 2")
	}
	if IsTimely(s, NewSet(1), NewSet(3), 5) {
		t.Error("singleton should not be timely with bound 5 at 10 rounds")
	}
	if got := MinBound(s, NewSet(1, 2), NewSet(3)); got != 2 {
		t.Errorf("MinBound = %d", got)
	}
	parsed, err := ParseSchedule("p1 p3 p2")
	if err != nil || len(parsed) != 3 {
		t.Errorf("ParseSchedule = %v, %v", parsed, err)
	}
	if AllProcs(3) != NewSet(1, 2, 3) {
		t.Error("AllProcs mismatch")
	}
}

func TestSolveEndToEnd(t *testing.T) {
	t.Parallel()
	res, err := Solve(context.Background(),
		WithProblem(NewProblem(2, 2, 4)),
		WithCrashes(map[ProcID]int{4: 50}),
		WithSeed(3))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !res.Decided {
		t.Fatal("run did not decide")
	}
	if res.Distinct > 2 {
		t.Errorf("distinct = %d, want ≤ 2", res.Distinct)
	}
	if len(res.Decisions) < 3 {
		t.Errorf("only %d processes decided", len(res.Decisions))
	}
}

func TestSolveTrivialPath(t *testing.T) {
	t.Parallel()
	res, err := Solve(context.Background(), WithSolveConfig(SolveConfig{
		Problem:  NewProblem(1, 2, 3),
		System:   Sij(1, 1, 3), // asynchronous: k ≥ t+1 is solvable there
		Seed:     5,
		MaxSteps: 200_000,
	}))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !res.Decided || res.Distinct > 2 {
		t.Errorf("result = %+v", res)
	}
}

func TestSolveRejectsUnsolvable(t *testing.T) {
	t.Parallel()
	_, err := Solve(context.Background(),
		WithProblem(NewProblem(3, 2, 5)),
		WithSystem(Sij(2, 3, 5)))
	if err == nil {
		t.Fatal("unsolvable combination accepted")
	}
}

func TestSolveCustomProposals(t *testing.T) {
	t.Parallel()
	res, err := Solve(context.Background(),
		WithProblem(NewProblem(1, 1, 3)),
		WithProposals(map[ProcID]any{1: 100, 2: 200, 3: 300}),
		WithSeed(7))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for p, v := range res.Decisions {
		if v != 100 && v != 200 && v != 300 {
			t.Errorf("p%d decided %v", p, v)
		}
	}
	if res.Distinct != 1 {
		t.Errorf("consensus decided %d values", res.Distinct)
	}
	// Missing proposal is rejected.
	if _, err := Solve(context.Background(),
		WithProblem(NewProblem(1, 1, 3)),
		WithProposals(map[ProcID]any{1: 100})); err == nil {
		t.Error("partial proposals accepted")
	}
}

func TestRunDetectorAPI(t *testing.T) {
	t.Parallel()
	res, err := RunDetector(context.Background(),
		WithDetector(4, 2, 2),
		WithCrashes(map[ProcID]int{4: 30}),
		WithSeed(9))
	if err != nil {
		t.Fatalf("RunDetector: %v", err)
	}
	if !res.Stable {
		t.Fatal("detector did not stabilize")
	}
	if res.Winnerset.Size() != 2 {
		t.Errorf("winnerset = %v", res.Winnerset)
	}
	if res.Witness == 0 {
		t.Error("no witness reported")
	}
	if res.Witness == 4 {
		t.Error("crashed process reported as witness")
	}
}

func TestRunDetectorValidation(t *testing.T) {
	t.Parallel()
	if _, err := RunDetector(context.Background(), WithDetector(2, 2, 1)); err == nil {
		t.Error("k = n accepted")
	}
}
