// stm-benchgate is the CI bench-regression gate: it compares a fresh
// `stm-bench -json` run against the committed baseline and fails on
// regressions.
//
//	stm-benchgate -baseline BENCH_pr5.json -current bench.json
//
// CI runners are noisy, so the gate is deliberately generous: an experiment
// fails only when it no longer reproduces (pass == false), disappears from
// the run, or its elapsed time exceeds tolerance × its baseline time
// (default 2×) — and sub-floor baselines (default 10ms) are measured
// against the floor instead, so micro-experiments cannot trip the gate on
// scheduling jitter. Every comparison is printed, so the uploaded artifact
// doubles as a perf-trajectory record.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

// record mirrors stm-bench's -json output line.
type record struct {
	ID        string `json:"id"`
	Title     string `json:"title"`
	Pass      bool   `json:"pass"`
	ElapsedNS int64  `json:"elapsed_ns"`
}

func main() {
	var (
		baseline  = flag.String("baseline", "", "committed baseline JSON (stm-bench -json output)")
		current   = flag.String("current", "", "fresh run JSON to gate")
		tolerance = flag.Float64("tolerance", 2.0, "fail when current > tolerance × baseline")
		floor     = flag.Duration("floor", 10*time.Millisecond, "baselines below this compare against the floor instead")
	)
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "stm-benchgate: -baseline and -current are required")
		os.Exit(2)
	}
	if err := run(os.Stdout, *baseline, *current, *tolerance, *floor); err != nil {
		fmt.Fprintf(os.Stderr, "stm-benchgate: %v\n", err)
		os.Exit(1)
	}
}

func load(path string) (map[string]record, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	recs, order := make(map[string]record), []string(nil)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r record
		if err := json.Unmarshal(line, &r); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		if _, dup := recs[r.ID]; !dup {
			order = append(order, r.ID)
		}
		recs[r.ID] = r
	}
	return recs, order, sc.Err()
}

func run(w io.Writer, basePath, curPath string, tolerance float64, floor time.Duration) error {
	base, order, err := load(basePath)
	if err != nil {
		return err
	}
	cur, _, err := load(curPath)
	if err != nil {
		return err
	}
	failures := 0
	for _, id := range order {
		b := base[id]
		c, ok := cur[id]
		switch {
		case !ok:
			failures++
			fmt.Fprintf(w, "FAIL %-3s missing from current run\n", id)
			continue
		case !c.Pass:
			failures++
			fmt.Fprintf(w, "FAIL %-3s no longer reproduces\n", id)
			continue
		}
		ref := b.ElapsedNS
		if ref < int64(floor) {
			ref = int64(floor)
		}
		ratio := float64(c.ElapsedNS) / float64(ref)
		verdict := "ok  "
		if ratio > tolerance {
			verdict = "FAIL"
			failures++
		}
		fmt.Fprintf(w, "%s %-3s baseline %8.1fms current %8.1fms ratio %.2fx (limit %.2fx)\n",
			verdict, id, float64(b.ElapsedNS)/1e6, float64(c.ElapsedNS)/1e6, ratio, tolerance)
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) regressed past the gate", failures)
	}
	fmt.Fprintln(w, "bench gate clean")
	return nil
}
