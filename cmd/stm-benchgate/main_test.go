package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baseline = `{"id":"E1","pass":true,"elapsed_ns":100000}
{"id":"E4","pass":true,"elapsed_ns":40000000}
{"id":"E8","pass":true,"elapsed_ns":15000000}
`

func TestGateClean(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baseline)
	// E1 is far below the floor (jitter must not trip the gate); E4 improved;
	// E8 regressed but within 2×.
	c := write(t, dir, "cur.json", `{"id":"E1","pass":true,"elapsed_ns":9000000}
{"id":"E4","pass":true,"elapsed_ns":30000000}
{"id":"E8","pass":true,"elapsed_ns":26000000}
`)
	var sb strings.Builder
	if err := run(&sb, b, c, 2.0, 10_000_000); err != nil {
		t.Fatalf("clean comparison failed: %v\n%s", err, sb.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baseline)
	// E4 at >2× its baseline: the synthetic regression the gate must catch.
	c := write(t, dir, "cur.json", `{"id":"E1","pass":true,"elapsed_ns":100000}
{"id":"E4","pass":true,"elapsed_ns":90000000}
{"id":"E8","pass":true,"elapsed_ns":15000000}
`)
	var sb strings.Builder
	err := run(&sb, b, c, 2.0, 10_000_000)
	if err == nil {
		t.Fatalf("gate passed a 2.25x regression:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "FAIL E4") {
		t.Fatalf("gate did not name E4:\n%s", sb.String())
	}
}

func TestGateFailsOnLostReproduction(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baseline)
	c := write(t, dir, "cur.json", `{"id":"E1","pass":true,"elapsed_ns":100000}
{"id":"E4","pass":false,"elapsed_ns":40000000}
{"id":"E8","pass":true,"elapsed_ns":15000000}
`)
	var sb strings.Builder
	if err := run(&sb, b, c, 2.0, 10_000_000); err == nil {
		t.Fatal("gate passed a failing experiment")
	}
}

func TestGateFailsOnMissingExperiment(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baseline)
	c := write(t, dir, "cur.json", `{"id":"E1","pass":true,"elapsed_ns":100000}
{"id":"E8","pass":true,"elapsed_ns":15000000}
`)
	var sb strings.Builder
	if err := run(&sb, b, c, 2.0, 10_000_000); err == nil {
		t.Fatal("gate passed with E4 missing")
	}
}
