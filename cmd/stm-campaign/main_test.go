package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/settimeliness/settimeliness/internal/campaign"
)

// TestMain lets the test binary double as a stm-campaign worker process: the
// coordinator spawns os.Executable() with EnvWorker set and argv
// [exe, subcommand, flags...], exactly like the installed binary.
func TestMain(m *testing.M) {
	if os.Getenv(campaign.EnvWorker) == "1" {
		runWorker()
		return // unreachable: runWorker exits
	}
	os.Exit(m.Run())
}

func TestParseRange(t *testing.T) {
	t.Parallel()
	lo, hi, err := parseRange("2")
	if err != nil || lo != 2 || hi != 2 {
		t.Errorf("parseRange(2) = %d,%d,%v", lo, hi, err)
	}
	lo, hi, err = parseRange("1:3")
	if err != nil || lo != 1 || hi != 3 {
		t.Errorf("parseRange(1:3) = %d,%d,%v", lo, hi, err)
	}
	if _, _, err := parseRange("3:1"); err == nil {
		t.Error("empty range accepted")
	}
	if _, _, err := parseRange("x"); err == nil {
		t.Error("junk accepted")
	}
}

func TestParseCrashPatterns(t *testing.T) {
	t.Parallel()
	patterns, err := parseCrashPatterns("p1@3;p2@0,p4@9")
	if err != nil {
		t.Fatal(err)
	}
	if len(patterns) != 2 || patterns[0][1] != 3 || patterns[1][2] != 0 || patterns[1][4] != 9 {
		t.Errorf("patterns = %v", patterns)
	}
	if got, err := parseCrashPatterns(""); err != nil || got != nil {
		t.Errorf("empty spec = %v, %v", got, err)
	}
	if _, err := parseCrashPatterns("p1=3"); err == nil {
		t.Error("bad entry accepted")
	}
}

func TestMatrixCampaignSmoke(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	err := cmdMatrix(context.Background(), []string{"-t", "1", "-k", "1", "-n", "2",
		"-posbudget", "500000", "-negbudget", "20000", "-workers", "2", "-json"}, &out)
	if err != nil {
		t.Fatalf("matrix campaign failed: %v\noutput: %s", err, out.String())
	}
	var rec record
	if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
		t.Fatalf("non-JSON output: %v\n%s", err, out.String())
	}
	if rec.Campaign != "matrix" || rec.Summary.Jobs != 3 || rec.Summary.Failed != 0 {
		t.Errorf("record = %+v", rec)
	}
}

func TestFuzzCampaignSmokeWithJSONL(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "fuzz.jsonl")
	var out bytes.Buffer
	err := cmdFuzz(context.Background(), []string{"-target", "commitadopt", "-n", "3", "-steps", "60",
		"-schedules", "40", "-crashes", "p1@3", "-workers", "2", "-json", "-jsonl", path}, &out)
	if err != nil {
		t.Fatalf("fuzz campaign failed: %v\noutput: %s", err, out.String())
	}
	var rec record
	if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
		t.Fatalf("non-JSON output: %v\n%s", err, out.String())
	}
	if rec.Summary.Tallies["runs"] != 40 {
		t.Errorf("runs = %d, want 40", rec.Summary.Tallies["runs"])
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if !strings.HasPrefix(sc.Text(), "{") {
			t.Errorf("non-JSON line: %s", sc.Text())
		}
		lines++
	}
	if lines != rec.Summary.Completed {
		t.Errorf("jsonl lines = %d, completed = %d", lines, rec.Summary.Completed)
	}
}

func TestConvergeCampaignSmoke(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	err := cmdConverge(context.Background(), []string{"-n", "3", "-k", "1", "-t", "1", "-trials", "3", "-workers", "2", "-json"}, &out)
	if err != nil {
		t.Fatalf("converge campaign failed: %v\noutput: %s", err, out.String())
	}
	var rec record
	if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
		t.Fatalf("non-JSON output: %v\n%s", err, out.String())
	}
	if rec.Summary.Verdicts["stable"] != 3 {
		t.Errorf("verdicts = %v", rec.Summary.Verdicts)
	}
}

func TestAdversarialCampaignSmoke(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	err := cmdAdversarial(context.Background(), []string{"-n", "3", "-runs", "6", "-steps", "20000", "-workers", "2", "-json"}, &out)
	if err != nil {
		t.Fatalf("adversarial campaign failed: %v\noutput: %s", err, out.String())
	}
	var rec record
	if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
		t.Fatalf("non-JSON output: %v\n%s", err, out.String())
	}
	if rec.Summary.Tallies["starved"] != 6 {
		t.Errorf("tallies = %v, want 6 starved runs", rec.Summary.Tallies)
	}
}

func TestRelationsCampaignSmoke(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	err := cmdRelations(context.Background(), []string{"-n", "3", "-steps", "200", "-schedules", "8", "-workers", "2"}, &out)
	if err != nil {
		t.Fatalf("relations campaign failed: %v\noutput: %s", err, out.String())
	}
	if !strings.Contains(out.String(), "S^1_{1,3}") {
		t.Errorf("relations table missing:\n%s", out.String())
	}
}

// TestFuzzEnginesBitIdentical drives the CLI end to end across execution
// paths: -engine pooled (reused direct-dispatch runs) and -engine fresh
// (coroutine run per schedule) must emit identical -json summaries for
// every target, at several worker counts.
func TestFuzzEnginesBitIdentical(t *testing.T) {
	t.Parallel()
	summary := func(target, engine, workers string) string {
		var out bytes.Buffer
		err := cmdFuzz(context.Background(), []string{"-target", target, "-n", "3", "-steps", "80",
			"-schedules", "24", "-seed", "3", "-engine", engine, "-workers", workers, "-json"}, &out)
		if err != nil {
			t.Fatalf("%s/%s: %v\n%s", target, engine, err, out.String())
		}
		var rec record
		if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		s, err := json.Marshal(rec.Summary)
		if err != nil {
			t.Fatal(err)
		}
		return string(s)
	}
	for _, target := range []string{"commitadopt", "consensus", "cachain"} {
		want := summary(target, "fresh", "1")
		for _, engine := range []string{"pooled", "fresh"} {
			for _, workers := range []string{"1", "4"} {
				if got := summary(target, engine, workers); got != want {
					t.Errorf("%s: engine=%s workers=%s diverges:\n%s\nvs\n%s", target, engine, workers, got, want)
				}
			}
		}
	}
}

// TestCampaignJSONDeterministicAcrossWorkers drives the CLI end to end: the
// -json summary (elapsed stripped) must be identical at -workers 1 and 8.
func TestCampaignJSONDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	summary := func(workers string) string {
		var out bytes.Buffer
		err := cmdRelations(context.Background(), []string{"-n", "3", "-steps", "200", "-schedules", "10",
			"-seed", "5", "-workers", workers, "-json"}, &out)
		if err != nil {
			t.Fatal(err)
		}
		var rec record
		if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		s, err := json.Marshal(rec.Summary)
		if err != nil {
			t.Fatal(err)
		}
		return string(s)
	}
	if s1, s8 := summary("1"), summary("8"); s1 != s8 {
		t.Errorf("summaries differ:\nworkers=1: %s\nworkers=8: %s", s1, s8)
	}
}

func TestMonitorSmoke(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	// Non-multiple of -every exercises both the periodic and the final print;
	// the command itself cross-checks the monitor against the batch extractor
	// and fails on any mismatch.
	err := cmdMonitor(context.Background(), []string{"-n", "4", "-steps", "1500", "-every", "700", "-window", "128", "-seed", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verified against the batch extractor") {
		t.Fatalf("missing verification line in output:\n%s", out.String())
	}
	if got := strings.Count(out.String(), "timeliness graph after"); got != 3 {
		t.Fatalf("got %d periodic graphs, want 3 (after 700, 1400, 1500)", got)
	}
}

func TestMonitorJSON(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	if err := cmdMonitor(context.Background(), []string{"-n", "3", "-gen", "random", "-steps", "600", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Campaign string `json:"campaign"`
		Steps    int    `json:"steps"`
		Graph    []struct {
			I        int `json:"i"`
			J        int `json:"j"`
			MinBound int `json:"min_bound"`
		} `json:"graph"`
	}
	if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if rec.Campaign != "monitor" || rec.Steps != 600 || len(rec.Graph) != 6 {
		t.Fatalf("record = %+v", rec)
	}
}

func TestMonitorRejectsBadFlags(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	if err := cmdMonitor(context.Background(), []string{"-n", "7"}, &out); err == nil {
		t.Error("n=7 accepted (full family tracking is bounded at 6)")
	}
	if err := cmdMonitor(context.Background(), []string{"-gen", "bogus"}, &out); err == nil {
		t.Error("bogus generator accepted")
	}
}

// fuzzSummary runs cmdFuzz with the given extra flags prepended to a fixed
// base invocation and returns the marshaled -json Summary (deterministic:
// no wall-clock fields).
func fuzzSummary(t *testing.T, extra ...string) string {
	t.Helper()
	base := []string{"-target", "consensus", "-n", "3", "-steps", "60",
		"-schedules", "30", "-seed", "7", "-workers", "4", "-json"}
	var out bytes.Buffer
	err := cmdFuzz(context.Background(), append(extra, base...), &out)
	if err != nil {
		t.Fatalf("cmdFuzz(%v): %v\n%s", extra, err, out.String())
	}
	var rec record
	if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
		t.Fatalf("non-JSON output: %v\n%s", err, out.String())
	}
	s, err := json.Marshal(rec.Summary)
	if err != nil {
		t.Fatal(err)
	}
	return string(s)
}

// TestFuzzCheckpointCrashResume is the tentpole end to end at the CLI layer:
// a chaos-crashed coordinator leaves a usable checkpoint (surfaced as
// InterruptedError), and the -resume rerun produces the same summary and the
// same -jsonl stream, byte for byte, as an uninterrupted run.
func TestFuzzCheckpointCrashResume(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	plainJSONL := filepath.Join(dir, "plain.jsonl")
	want := fuzzSummary(t, "-jsonl", plainJSONL)

	ck := filepath.Join(dir, "ck.jsonl")
	base := []string{"-target", "consensus", "-n", "3", "-steps", "60",
		"-schedules", "30", "-seed", "7", "-workers", "4", "-json"}
	var out bytes.Buffer
	err := cmdFuzz(context.Background(), append([]string{"-checkpoint", ck, "-chaos", "trunc@9"}, base...), &out)
	var ie *campaign.InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("chaos run returned %v, want InterruptedError", err)
	}
	if !ie.Injected || ie.Checkpoint != ck {
		t.Fatalf("InterruptedError = %+v", ie)
	}

	resumedJSONL := filepath.Join(dir, "resumed.jsonl")
	got := fuzzSummary(t, "-checkpoint", ck, "-resume", "-jsonl", resumedJSONL)
	if got != want {
		t.Errorf("resumed summary diverges:\n%s\nvs\n%s", got, want)
	}
	a, err := os.ReadFile(plainJSONL)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(resumedJSONL)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("resumed -jsonl stream is not byte-identical to the plain run (%d vs %d bytes)", len(a), len(b))
	}
}

// TestFuzzSelfHealingBitIdentical: worker kills and stalled jobs are healed
// by the coordinator (requeue + respawn) without changing the aggregate.
func TestFuzzSelfHealingBitIdentical(t *testing.T) {
	t.Parallel()
	want := fuzzSummary(t)
	got := fuzzSummary(t, "-chaos", "kill@5;stall@3~400ms", "-lease", "120ms", "-retries", "4")
	if got != want {
		t.Errorf("chaos-healed summary diverges:\n%s\nvs\n%s", got, want)
	}
}

// TestFuzzProcWorkersBitIdentical dispatches to child worker processes (the
// test binary re-exec'd via TestMain) and must match the in-process run.
func TestFuzzProcWorkersBitIdentical(t *testing.T) {
	t.Parallel()
	want := fuzzSummary(t)
	got := fuzzSummary(t, "-procs", "2")
	if got != want {
		t.Errorf("-procs 2 summary diverges:\n%s\nvs\n%s", got, want)
	}
}

// TestFuzzProcWorkersSurviveKills: a fault plan that repeatedly kills child
// processes mid-campaign still converges to the same summary.
func TestFuzzProcWorkersSurviveKills(t *testing.T) {
	t.Parallel()
	want := fuzzSummary(t)
	got := fuzzSummary(t, "-procs", "2", "-chaos", "kill@4", "-lease", "10s")
	if got != want {
		t.Errorf("killed-proc summary diverges:\n%s\nvs\n%s", got, want)
	}
}

func TestResilienceFlagValidation(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	err := cmdFuzz(context.Background(), []string{"-resume", "-schedules", "4"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-checkpoint") {
		t.Errorf("-resume without -checkpoint: %v", err)
	}
	err = cmdFuzz(context.Background(), []string{"-chaos", "explode@3", "-schedules", "4"}, &out)
	if err == nil {
		t.Error("bad -chaos plan accepted")
	}
	err = cmdExhaustive(context.Background(), []string{"-checkpoint", filepath.Join(t.TempDir(), "ck"), "-depth", "3"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-reduce=false") {
		t.Errorf("reduced exhaustive with -checkpoint: %v", err)
	}
}

func TestResumeCommand(t *testing.T) {
	old := os.Args
	defer func() { os.Args = old }()
	os.Args = []string{"stm-campaign", "fuzz", "-checkpoint", "ck.jsonl"}
	if got, want := resumeCommand(), "stm-campaign fuzz -checkpoint ck.jsonl -resume"; got != want {
		t.Errorf("resumeCommand() = %q, want %q", got, want)
	}
	os.Args = []string{"stm-campaign", "fuzz", "-checkpoint", "ck.jsonl", "-resume"}
	if got := resumeCommand(); strings.Count(got, "-resume") != 1 {
		t.Errorf("resumeCommand() duplicated -resume: %q", got)
	}
}

func TestCheckDegraded(t *testing.T) {
	t.Parallel()
	if err := checkDegraded(&campaign.Report{}); err != nil {
		t.Errorf("clean report flagged degraded: %v", err)
	}
	rep := &campaign.Report{Quarantined: []campaign.QuarantineRecord{
		{Job: 3, Name: "poison", Attempts: 4, LastErr: "lease expired after 30ms (attempt 3)"},
	}}
	err := checkDegraded(rep)
	var de *degradedError
	if !errors.As(err, &de) {
		t.Fatalf("checkDegraded = %v, want degradedError", err)
	}
	for _, frag := range []string{"quarantined", "job 3", "poison", "lease expired"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("degraded message lacks %q: %s", frag, err)
		}
	}
}

// A campaign run with -pprof brings the debug endpoints up for its duration
// and shuts them down on exit; the run result must be unaffected.
func TestPprofFlagSmoke(t *testing.T) {
	var plain, instrumented bytes.Buffer
	args := []string{"-n", "3", "-schedules", "6", "-steps", "200", "-json"}
	if err := cmdRelations(context.Background(), args, &plain); err != nil {
		t.Fatal(err)
	}
	if err := cmdRelations(context.Background(), append([]string{"-pprof", "127.0.0.1:0"}, args...), &instrumented); err != nil {
		t.Fatal(err)
	}
	var p, i map[string]json.RawMessage
	if err := json.Unmarshal(plain.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(instrumented.Bytes(), &i); err != nil {
		t.Fatal(err)
	}
	if string(p["summary"]) != string(i["summary"]) {
		t.Fatalf("-pprof changed the summary:\n%s\n%s", p["summary"], i["summary"])
	}
}
