package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseRange(t *testing.T) {
	t.Parallel()
	lo, hi, err := parseRange("2")
	if err != nil || lo != 2 || hi != 2 {
		t.Errorf("parseRange(2) = %d,%d,%v", lo, hi, err)
	}
	lo, hi, err = parseRange("1:3")
	if err != nil || lo != 1 || hi != 3 {
		t.Errorf("parseRange(1:3) = %d,%d,%v", lo, hi, err)
	}
	if _, _, err := parseRange("3:1"); err == nil {
		t.Error("empty range accepted")
	}
	if _, _, err := parseRange("x"); err == nil {
		t.Error("junk accepted")
	}
}

func TestParseCrashPatterns(t *testing.T) {
	t.Parallel()
	patterns, err := parseCrashPatterns("p1@3;p2@0,p4@9")
	if err != nil {
		t.Fatal(err)
	}
	if len(patterns) != 2 || patterns[0][1] != 3 || patterns[1][2] != 0 || patterns[1][4] != 9 {
		t.Errorf("patterns = %v", patterns)
	}
	if got, err := parseCrashPatterns(""); err != nil || got != nil {
		t.Errorf("empty spec = %v, %v", got, err)
	}
	if _, err := parseCrashPatterns("p1=3"); err == nil {
		t.Error("bad entry accepted")
	}
}

func TestMatrixCampaignSmoke(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	err := cmdMatrix([]string{"-t", "1", "-k", "1", "-n", "2",
		"-posbudget", "500000", "-negbudget", "20000", "-workers", "2", "-json"}, &out)
	if err != nil {
		t.Fatalf("matrix campaign failed: %v\noutput: %s", err, out.String())
	}
	var rec record
	if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
		t.Fatalf("non-JSON output: %v\n%s", err, out.String())
	}
	if rec.Campaign != "matrix" || rec.Summary.Jobs != 3 || rec.Summary.Failed != 0 {
		t.Errorf("record = %+v", rec)
	}
}

func TestFuzzCampaignSmokeWithJSONL(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "fuzz.jsonl")
	var out bytes.Buffer
	err := cmdFuzz([]string{"-target", "commitadopt", "-n", "3", "-steps", "60",
		"-schedules", "40", "-crashes", "p1@3", "-workers", "2", "-json", "-jsonl", path}, &out)
	if err != nil {
		t.Fatalf("fuzz campaign failed: %v\noutput: %s", err, out.String())
	}
	var rec record
	if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
		t.Fatalf("non-JSON output: %v\n%s", err, out.String())
	}
	if rec.Summary.Tallies["runs"] != 40 {
		t.Errorf("runs = %d, want 40", rec.Summary.Tallies["runs"])
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if !strings.HasPrefix(sc.Text(), "{") {
			t.Errorf("non-JSON line: %s", sc.Text())
		}
		lines++
	}
	if lines != rec.Summary.Completed {
		t.Errorf("jsonl lines = %d, completed = %d", lines, rec.Summary.Completed)
	}
}

func TestConvergeCampaignSmoke(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	err := cmdConverge([]string{"-n", "3", "-k", "1", "-t", "1", "-trials", "3", "-workers", "2", "-json"}, &out)
	if err != nil {
		t.Fatalf("converge campaign failed: %v\noutput: %s", err, out.String())
	}
	var rec record
	if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
		t.Fatalf("non-JSON output: %v\n%s", err, out.String())
	}
	if rec.Summary.Verdicts["stable"] != 3 {
		t.Errorf("verdicts = %v", rec.Summary.Verdicts)
	}
}

func TestAdversarialCampaignSmoke(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	err := cmdAdversarial([]string{"-n", "3", "-runs", "6", "-steps", "20000", "-workers", "2", "-json"}, &out)
	if err != nil {
		t.Fatalf("adversarial campaign failed: %v\noutput: %s", err, out.String())
	}
	var rec record
	if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
		t.Fatalf("non-JSON output: %v\n%s", err, out.String())
	}
	if rec.Summary.Tallies["starved"] != 6 {
		t.Errorf("tallies = %v, want 6 starved runs", rec.Summary.Tallies)
	}
}

func TestRelationsCampaignSmoke(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	err := cmdRelations([]string{"-n", "3", "-steps", "200", "-schedules", "8", "-workers", "2"}, &out)
	if err != nil {
		t.Fatalf("relations campaign failed: %v\noutput: %s", err, out.String())
	}
	if !strings.Contains(out.String(), "S^1_{1,3}") {
		t.Errorf("relations table missing:\n%s", out.String())
	}
}

// TestFuzzEnginesBitIdentical drives the CLI end to end across execution
// paths: -engine pooled (reused direct-dispatch runs) and -engine fresh
// (coroutine run per schedule) must emit identical -json summaries for
// every target, at several worker counts.
func TestFuzzEnginesBitIdentical(t *testing.T) {
	t.Parallel()
	summary := func(target, engine, workers string) string {
		var out bytes.Buffer
		err := cmdFuzz([]string{"-target", target, "-n", "3", "-steps", "80",
			"-schedules", "24", "-seed", "3", "-engine", engine, "-workers", workers, "-json"}, &out)
		if err != nil {
			t.Fatalf("%s/%s: %v\n%s", target, engine, err, out.String())
		}
		var rec record
		if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		s, err := json.Marshal(rec.Summary)
		if err != nil {
			t.Fatal(err)
		}
		return string(s)
	}
	for _, target := range []string{"commitadopt", "consensus", "cachain"} {
		want := summary(target, "fresh", "1")
		for _, engine := range []string{"pooled", "fresh"} {
			for _, workers := range []string{"1", "4"} {
				if got := summary(target, engine, workers); got != want {
					t.Errorf("%s: engine=%s workers=%s diverges:\n%s\nvs\n%s", target, engine, workers, got, want)
				}
			}
		}
	}
}

// TestCampaignJSONDeterministicAcrossWorkers drives the CLI end to end: the
// -json summary (elapsed stripped) must be identical at -workers 1 and 8.
func TestCampaignJSONDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	summary := func(workers string) string {
		var out bytes.Buffer
		err := cmdRelations([]string{"-n", "3", "-steps", "200", "-schedules", "10",
			"-seed", "5", "-workers", workers, "-json"}, &out)
		if err != nil {
			t.Fatal(err)
		}
		var rec record
		if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		s, err := json.Marshal(rec.Summary)
		if err != nil {
			t.Fatal(err)
		}
		return string(s)
	}
	if s1, s8 := summary("1"), summary("8"); s1 != s8 {
		t.Errorf("summaries differ:\nworkers=1: %s\nworkers=8: %s", s1, s8)
	}
}
