// stm-campaign runs named simulation campaigns — large batches of
// independent deterministic runs sharded across a worker pool
// (internal/campaign). The same seed produces a bit-identical summary at any
// worker count; only wall-clock time changes.
//
//	stm-campaign matrix -t 2 -k 2 -n 4                 empirical Theorem 27 matrix
//	stm-campaign matrix -t 1:2 -k 1:2 -n 4:5           sweep over (t,k,n) ranges
//	stm-campaign fuzz -target commitadopt -schedules 10000
//	stm-campaign converge -n 4 -k 2 -t 2 -trials 64
//	stm-campaign relations -n 4 -schedules 200
//
// Global-ish flags on every subcommand: -workers (0 = GOMAXPROCS), -seed,
// -json (machine-readable summary on stdout), -jsonl FILE (stream one JSON
// record per job). Resilience flags (-checkpoint, -resume, -procs, -chaos,
// -lease, -retries) route the run through the fault-tolerant coordinator:
// checkpointed, lease-based dispatch that survives worker crashes and hangs
// and resumes after coordinator death with a bit-identical aggregate.
//
// Exit codes: 0 clean; 1 error or property violation; 2 usage; 3 completed
// degraded (quarantined jobs — reported, never silent); 4 interrupted with a
// usable checkpoint (the exact -resume invocation is printed on stderr).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/settimeliness/settimeliness/internal/adversary"
	"github.com/settimeliness/settimeliness/internal/campaign"
	"github.com/settimeliness/settimeliness/internal/core"
	"github.com/settimeliness/settimeliness/internal/experiments"
	"github.com/settimeliness/settimeliness/internal/explore"
	"github.com/settimeliness/settimeliness/internal/faultinject"
	"github.com/settimeliness/settimeliness/internal/obs"
	"github.com/settimeliness/settimeliness/internal/procset"
	"github.com/settimeliness/settimeliness/internal/sched"
	"github.com/settimeliness/settimeliness/internal/trace"
)

// Exit codes (documented in usage; asserted by the CI chaos job).
const (
	exitOK          = 0
	exitError       = 1
	exitUsage       = 2
	exitDegraded    = 3
	exitInterrupted = 4
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(exitUsage)
	}
	if os.Getenv(campaign.EnvWorker) == "1" {
		// This process is a child of a coordinating stm-campaign: same
		// subcommand, same arguments, but campaign.Run serves the job list
		// over stdin/stdout instead of executing the campaign.
		runWorker()
		return
	}
	// SIGINT/SIGTERM cancel the context instead of killing the process: the
	// campaign engine skips not-yet-started jobs, completed outcomes are
	// still folded, and the partial summary is printed before exiting
	// nonzero. With -checkpoint, the coordinator additionally writes a final
	// checkpoint and the exact resume invocation is printed. A second signal
	// kills the process (NotifyContext restores default handling once the
	// context is done).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err, known := dispatch(ctx, os.Args[1], os.Args[2:], os.Stdout)
	if !known {
		usage()
		os.Exit(exitUsage)
	}
	if ctx.Err() != nil && err == nil {
		err = fmt.Errorf("interrupted; partial results above")
	}
	var ie *campaign.InterruptedError
	var de *degradedError
	switch {
	case err == nil:
	case errors.As(err, &ie):
		fmt.Fprintf(os.Stderr, "stm-campaign: %v\n", err)
		fmt.Fprintf(os.Stderr, "stm-campaign: resume with: %s\n", resumeCommand())
		os.Exit(exitInterrupted)
	case errors.As(err, &de):
		fmt.Fprintf(os.Stderr, "stm-campaign: %v\n", err)
		os.Exit(exitDegraded)
	default:
		fmt.Fprintf(os.Stderr, "stm-campaign: %v\n", err)
		os.Exit(exitError)
	}
}

// dispatch routes a subcommand; known reports whether the name was one.
func dispatch(ctx context.Context, sub string, args []string, w io.Writer) (err error, known bool) {
	switch sub {
	case "matrix":
		return cmdMatrix(ctx, args, w), true
	case "fuzz":
		return cmdFuzz(ctx, args, w), true
	case "exhaustive":
		return cmdExhaustive(ctx, args, w), true
	case "converge":
		return cmdConverge(ctx, args, w), true
	case "relations":
		return cmdRelations(ctx, args, w), true
	case "adversarial":
		return cmdAdversarial(ctx, args, w), true
	case "byzantine":
		return cmdByzantine(ctx, args, w), true
	case "netconv":
		return cmdNetConv(ctx, args, w), true
	case "monitor":
		return cmdMonitor(ctx, args, w), true
	}
	return nil, false
}

// runWorker is the worker-process entry: rebuild the same campaign the
// coordinator holds by running the identical subcommand code path, with
// campaign.Run rerouted into serve mode. Human output is discarded;
// parent-only side effects (sink files, checkpoints, debug servers) are
// disabled by the ServingWorker gates in the shared helpers.
func runWorker() {
	ctx := campaign.WithWorkerServe(context.Background(), os.Stdin, os.Stdout)
	err, known := dispatch(ctx, os.Args[1], os.Args[2:], io.Discard)
	if !known {
		fmt.Fprintf(os.Stderr, "stm-campaign worker: unknown subcommand %q\n", os.Args[1])
		os.Exit(exitError)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "stm-campaign worker: %v\n", err)
		os.Exit(exitError)
	}
	os.Exit(exitOK)
}

// resumeCommand reconstructs this invocation with -resume appended, for the
// interrupted-with-checkpoint hint.
func resumeCommand() string {
	for _, a := range os.Args[1:] {
		if a == "-resume" || a == "--resume" || a == "-resume=true" || a == "--resume=true" {
			return strings.Join(os.Args, " ")
		}
	}
	return strings.Join(os.Args, " ") + " -resume"
}

// degradedError marks a campaign that completed but quarantined poison jobs:
// every healthy job is accounted for, the gaps are listed, and the exit code
// says degraded.
type degradedError struct {
	records []campaign.QuarantineRecord
}

func (e *degradedError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign completed degraded: %d job(s) quarantined after exhausting retries:", len(e.records))
	for _, q := range e.records {
		fmt.Fprintf(&b, "\n  job %d (%s): %d attempts, last error: %s", q.Job, q.Name, q.Attempts, q.LastErr)
	}
	return b.String()
}

// checkDegraded converts a quarantined-but-completed report into the
// degraded exit path. Call only after the happy-path summary was emitted.
func checkDegraded(rep *campaign.Report) error {
	if rep != nil && len(rep.Quarantined) > 0 {
		return &degradedError{records: rep.Quarantined}
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  stm-campaign matrix    -t T -k K -n N [-posbudget B] [-negbudget B]   empirical Theorem 27 matrices
  stm-campaign fuzz      -target commitadopt|consensus|cachain|kset|bg -schedules S  schedule fuzzing
  stm-campaign exhaustive -target T -n N -depth D [-reduce=false]      every schedule up to depth D (partial-order reduced by default)
  stm-campaign converge  -n N -k K -t T -trials R                       detector-convergence sweep
  stm-campaign relations -n N -schedules S [-gen random|starver|mixed]  timeliness-relation extraction
  stm-campaign adversarial -n N -runs R [-steps S]                      parking adversary vs the Theorem 24 solver
  stm-campaign byzantine -target T -n N [-crash LO:HI] [-byz LO:HI] [-strategies flip,stale,split] [-runs R] [-steps S]  Byzantine degradation matrix
  stm-campaign netconv   -n N [-matrices sync,psync,async,mixed] [-runs R] [-steps S] [-delta D] [-gst G] [-probe P]  detector convergence over graded link matrices
  stm-campaign monitor   -n N -steps S [-every E] [-gen random|starver|mixed]  online timeliness-graph monitoring
T, K, N accept single values ("2") or inclusive ranges ("1:3").
Common flags: -workers W (0 = GOMAXPROCS), -seed S, -json, -jsonl FILE,
-progress N (heartbeat to stderr every N jobs), -pprof ADDR (pprof+expvar),
-flight K (flight-recorder depth on campaigns with pooled runners).
Resilience flags (campaign subcommands; routes through the fault-tolerant
coordinator — the aggregate stays bit-identical to a plain run):
  -checkpoint FILE   journal completed jobs; interrupted runs leave a usable checkpoint
  -resume            skip jobs already in the -checkpoint journal
  -procs P           dispatch to P child worker processes (crash-isolated) instead of goroutines
  -lease D           per-attempt deadline before a hung job is requeued (default 1m)
  -retries R         re-leases before a poison job is quarantined (default 3)
  -chaos PLAN        deterministic fault injection; PLAN is ';'-separated directives:
                       kill@N            worker exits when handed its (N+1)-th job
                       stall@J~D         job J hangs D past its lease on the first attempt
                       delay@J~D         job J's result is delayed by D on the first attempt
                       (J is a job index or pP for probability P per job, e.g. p0.05)
                       crash@N | trunc@N | corrupt@N   coordinator dies after N journal
                       appends, leaving a clean, truncated, or corrupted tail
SIGINT/SIGTERM print the partial summary; with -checkpoint the exact resume
invocation is printed on stderr.
Exit codes: 0 clean; 1 error or property violation; 2 usage; 3 completed
degraded (quarantined jobs); 4 interrupted with a usable checkpoint.`)
}

// common holds the flags every campaign shares.
type common struct {
	workers   int
	seed      int64
	jsonOut   bool
	jsonlOut  string
	progress  int
	pprofAddr string
	flight    int

	// Resilience flags (fault-tolerant coordinator).
	checkpoint string
	resume     bool
	procs      int
	chaos      string
	lease      time.Duration
	retries    int
}

func (c *common) register(fs *flag.FlagSet) {
	fs.IntVar(&c.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	fs.Int64Var(&c.seed, "seed", 1, "campaign master seed")
	fs.BoolVar(&c.jsonOut, "json", false, "emit a machine-readable JSON summary on stdout")
	fs.StringVar(&c.jsonlOut, "jsonl", "", "stream one JSON record per job to this file")
	fs.IntVar(&c.progress, "progress", 0, "emit a JSONL heartbeat to stderr every N completed jobs (0 = off)")
	fs.StringVar(&c.pprofAddr, "pprof", "", "serve pprof and expvar debug endpoints on this address (e.g. localhost:6060)")
	fs.IntVar(&c.flight, "flight", 0, "per-runner flight recorder depth, dumped on violation or panic (0 = off; honored by campaigns with pooled runners)")
	fs.StringVar(&c.checkpoint, "checkpoint", "", "journal completed jobs to this file; interrupted runs resume from it")
	fs.BoolVar(&c.resume, "resume", false, "resume from the -checkpoint journal, skipping completed jobs (aggregate stays bit-identical)")
	fs.IntVar(&c.procs, "procs", 0, "dispatch jobs to this many child worker processes instead of in-process goroutines")
	fs.StringVar(&c.chaos, "chaos", "", `deterministic fault plan, e.g. "kill@3;stall@p0.05~300ms;trunc@7" (see usage)`)
	fs.DurationVar(&c.lease, "lease", 0, "per-attempt deadline before a job is requeued as hung (0 = 1m)")
	fs.IntVar(&c.retries, "retries", 0, "re-leases per job before quarantine (0 = 3, negative = none)")
}

// session bundles the context ceremony every subcommand used to repeat:
// begin applies coordinator resilience, instrumentation, and the
// flight-recorder knob in the canonical order; openSink opens the -jsonl
// stream (call it after validating inputs, so a bad invocation never leaves
// a stream file behind); finish folds the sink's close error into the
// campaign's; close stops instrumentation.
type session struct {
	ctx       context.Context
	c         *common
	cleanup   func()
	sink      func(campaign.Outcome)
	closeSink func() error
}

// begin starts a session for the named subcommand: it folds every common
// context knob into one campaign.Options and applies it with a single
// campaign.WithOptions call. name, args, and params feed the resilience
// layer's checkpoint identity and worker respawn.
func (c *common) begin(ctx context.Context, name string, args []string, params map[string]any) (*session, error) {
	o := campaign.Options{Flight: c.flight}
	cleanup := func() {}
	// Resilience and instrumentation belong to the coordinating parent; a
	// worker process (serve knob already installed) only carries the
	// flight-recorder request.
	if !campaign.ServingWorker(ctx) {
		res, err := c.resilienceOptions(name, args, params)
		if err != nil {
			return nil, err
		}
		o.Resilience = res
		if cleanup, err = c.instrument(&o); err != nil {
			cleanup()
			return nil, err
		}
	}
	ctx = campaign.WithOptions(ctx, o)
	return &session{ctx: ctx, c: c, cleanup: cleanup, closeSink: func() error { return nil }}, nil
}

// openSink opens the -jsonl stream and arms finish with its close error.
func (s *session) openSink() error {
	sink, closeSink, err := s.c.sink(s.ctx)
	if err != nil {
		return err
	}
	s.sink, s.closeSink = sink, closeSink
	return nil
}

// finish closes the sink, folding its error into err when err is nil.
func (s *session) finish(err error) error {
	if cerr := s.closeSink(); err == nil {
		err = cerr
	}
	s.closeSink = func() error { return nil }
	return err
}

// close stops instrumentation (deferred by every caller).
func (s *session) close() { s.cleanup() }

// resilienceRequested reports whether any coordinator flag was set.
func (c *common) resilienceRequested() bool {
	return c.checkpoint != "" || c.resume || c.procs != 0 || c.chaos != "" || c.lease != 0 || c.retries != 0
}

// resilienceOptions builds the fault-tolerant coordinator config when any
// of its flags are set (nil otherwise). name and args are the subcommand and
// its raw argument list: name + canonical params identify the campaign in
// the checkpoint header, and the same argv respawned under EnvWorker is how
// child processes rebuild the identical job list.
func (c *common) resilienceOptions(name string, args []string, params map[string]any) (*campaign.Resilience, error) {
	if !c.resilienceRequested() {
		return nil, nil
	}
	if c.resume && c.checkpoint == "" {
		return nil, fmt.Errorf("-resume needs -checkpoint")
	}
	plan, err := faultinject.Cached(c.chaos)
	if err != nil {
		return nil, err
	}
	canon, err := json.Marshal(params) // map keys encode sorted: canonical
	if err != nil {
		return nil, fmt.Errorf("canonicalizing %s params: %v", name, err)
	}
	res := &campaign.Resilience{
		Checkpoint: c.checkpoint,
		Resume:     c.resume,
		Spec:       campaign.Spec{Kind: name, Params: string(canon), Seed: c.seed},
		Procs:      c.procs,
		Lease:      c.lease,
		Retries:    c.retries,
		Chaos:      plan.Injector(c.seed),
		Log: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "stm-campaign: "+format+"\n", a...)
		},
	}
	if c.procs > 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("-procs: resolving worker binary: %v", err)
		}
		res.WorkerArgv = append([]string{exe, name}, args...)
	}
	return res, nil
}

// instrument applies the observability flags onto o: -progress installs a
// campaign heartbeat streaming JSONL to stderr, and -pprof starts the debug
// HTTP server (pprof + expvar), publishing the latest heartbeat as the
// "campaign" expvar. The cleanup function stops the debug server.
func (c *common) instrument(o *campaign.Options) (func(), error) {
	var last atomic.Pointer[campaign.Heartbeat]
	every := c.progress
	if every <= 0 && c.pprofAddr != "" {
		// No -progress cadence requested, but the expvar should stay fresh.
		every = 1
	}
	if every > 0 {
		enc := json.NewEncoder(os.Stderr)
		o.HeartbeatEvery = every
		o.Heartbeat = func(hb campaign.Heartbeat) {
			last.Store(&hb)
			if c.progress > 0 {
				_ = enc.Encode(hb) // best-effort telemetry: a broken stderr must not kill the run
			}
		}
	}
	cleanup := func() {}
	if c.pprofAddr != "" {
		obs.Publish("campaign", func() any {
			hb := last.Load()
			if hb == nil {
				return nil
			}
			return *hb
		})
		ds, err := obs.ServeDebug(c.pprofAddr)
		if err != nil {
			return cleanup, err
		}
		fmt.Fprintf(os.Stderr, "stm-campaign: debug endpoints on http://%s/debug/\n", ds.Addr())
		cleanup = func() { ds.Close() }
	}
	return cleanup, nil
}

// sink opens the -jsonl stream; the returned close function also surfaces
// encoding errors observed during the run. Worker processes skip it — they
// inherit the parent's -jsonl flag but must not clobber the parent's file.
func (c *common) sink(ctx context.Context) (func(campaign.Outcome), func() error, error) {
	if c.jsonlOut == "" || campaign.ServingWorker(ctx) {
		return nil, func() error { return nil }, nil
	}
	f, err := os.Create(c.jsonlOut)
	if err != nil {
		return nil, nil, err
	}
	sink, sinkErr := campaign.JSONLSink(f)
	closeFn := func() error {
		if err := f.Close(); err != nil {
			return err
		}
		return *sinkErr
	}
	return sink, closeFn, nil
}

// record is the -json summary envelope shared by all subcommands.
type record struct {
	Campaign  string           `json:"campaign"`
	Params    map[string]any   `json:"params"`
	Seed      int64            `json:"seed"`
	Workers   int              `json:"workers"`
	ElapsedNS int64            `json:"elapsed_ns"`
	Summary   campaign.Summary `json:"summary"`
}

func emit(w io.Writer, c common, name string, params map[string]any, rep *campaign.Report) error {
	if c.jsonOut {
		enc := json.NewEncoder(w)
		return enc.Encode(record{
			Campaign:  name,
			Params:    params,
			Seed:      c.seed,
			Workers:   rep.Workers,
			ElapsedNS: int64(rep.Elapsed),
			Summary:   rep.Summary,
		})
	}
	s := rep.Summary
	fmt.Fprintf(w, "campaign %s: %d jobs, %d completed, %d ok, %d failed (workers=%d, %.3fs)\n",
		name, s.Jobs, s.Completed, s.Ok, s.Failed, rep.Workers, rep.Elapsed.Seconds())
	if len(s.Verdicts) > 0 {
		fmt.Fprintf(w, "verdicts: %v\n", s.Verdicts)
	}
	if s.Completed > 0 {
		fmt.Fprintf(w, "steps: min=%d p50=%d p90=%d p99=%d max=%d mean=%.1f\n",
			s.Steps.Min, s.Steps.P50, s.Steps.P90, s.Steps.P99, s.Steps.Max, s.Steps.Mean)
	}
	return nil
}

// parseRange parses "2" or "1:3" into an inclusive [lo, hi].
func parseRange(text string) (int, int, error) {
	lo, hi, found := strings.Cut(text, ":")
	l, err := strconv.Atoi(strings.TrimSpace(lo))
	if err != nil {
		return 0, 0, fmt.Errorf("bad range %q: %v", text, err)
	}
	if !found {
		return l, l, nil
	}
	h, err := strconv.Atoi(strings.TrimSpace(hi))
	if err != nil {
		return 0, 0, fmt.Errorf("bad range %q: %v", text, err)
	}
	if h < l {
		return 0, 0, fmt.Errorf("bad range %q: empty", text)
	}
	return l, h, nil
}

func cmdMatrix(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("matrix", flag.ExitOnError)
	var c common
	c.register(fs)
	tRange := fs.String("t", "2", "resilience t (value or lo:hi range)")
	kRange := fs.String("k", "2", "agreement parameter k (value or range)")
	nRange := fs.String("n", "4", "system size n (value or range)")
	posBudget := fs.Int("posbudget", 3_000_000, "step budget for solvable cells")
	negBudget := fs.Int("negbudget", 300_000, "step horizon for unsolvable cells")
	if err := fs.Parse(args); err != nil {
		return err
	}
	t0, t1, err := parseRange(*tRange)
	if err != nil {
		return err
	}
	k0, k1, err := parseRange(*kRange)
	if err != nil {
		return err
	}
	n0, n1, err := parseRange(*nRange)
	if err != nil {
		return err
	}
	var problems []core.Problem
	for n := n0; n <= n1; n++ {
		for t := t0; t <= t1; t++ {
			for k := k0; k <= k1; k++ {
				p := core.Problem{T: t, K: k, N: n}
				if p.Validate() == nil {
					problems = append(problems, p)
				}
			}
		}
	}
	if len(problems) == 0 {
		return fmt.Errorf("no valid (t,k,n) problems in t=%s k=%s n=%s", *tRange, *kRange, *nRange)
	}
	params := map[string]any{
		"t": *tRange, "k": *kRange, "n": *nRange,
		"posbudget": *posBudget, "negbudget": *negBudget,
		"problems": len(problems),
	}
	s, err := c.begin(ctx, "matrix", args, params)
	if err != nil {
		return err
	}
	defer s.close()
	if err := s.openSink(); err != nil {
		return err
	}
	cells, rep, err := experiments.MatrixSweep(s.ctx, problems, c.seed, *posBudget, *negBudget, c.workers, s.sink)
	if err = s.finish(err); err != nil {
		return err
	}
	if !c.jsonOut {
		var tb *trace.Table
		var last core.Problem
		for _, cell := range cells {
			if tb == nil || cell.Problem != last {
				if tb != nil {
					fmt.Fprintln(w, tb.Render())
				}
				last = cell.Problem
				tb = trace.NewTable(fmt.Sprintf("Theorem 27 matrix for %v", cell.Problem),
					"i", "j", "theory", "empirical", "match")
			}
			theory := "unsolvable"
			if cell.Theory {
				theory = "solvable"
			}
			match := "yes"
			if !cell.Match {
				match = "NO"
			}
			tb.AddRow(cell.I, cell.J, theory, cell.Empirical, match)
		}
		if tb != nil {
			fmt.Fprintln(w, tb.Render())
		}
	}
	if err := emit(w, c, "matrix", params, rep); err != nil {
		return err
	}
	if rep.Summary.Failed > 0 {
		return fmt.Errorf("%d cells did not match the characterization", rep.Summary.Failed)
	}
	return checkDegraded(rep)
}

func cmdFuzz(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	var c common
	c.register(fs)
	target := fs.String("target", explore.TargetCommitAdopt, "protocol to fuzz (commitadopt|consensus|cachain|kset|bg)")
	n := fs.Int("n", 4, "number of processes")
	steps := fs.Int("steps", 300, "steps per schedule")
	schedules := fs.Int("schedules", 1000, "number of schedules")
	crashSpec := fs.String("crashes", "", "crash patterns, e.g. \"p1@3;p2@0,p4@9\" (empty = failure-free)")
	engine := fs.String("engine", "pooled", "execution path: pooled (reused direct-dispatch runs) or fresh (coroutine run per schedule); results are bit-identical")
	if err := fs.Parse(args); err != nil {
		return err
	}
	patterns, err := parseCrashPatterns(*crashSpec)
	if err != nil {
		return err
	}
	s, err := c.begin(ctx, "fuzz", args, fuzzParams(*target, *n, *steps, *schedules))
	if err != nil {
		return err
	}
	defer s.close()
	// Resolve the engine and target before opening the -jsonl sink so
	// invalid invocations don't create (and leak) the stream file.
	var fuzz func(onResult func(campaign.Outcome)) (*campaign.Report, int, error)
	switch *engine {
	case "pooled":
		build, err := explore.PooledTargetBuilder(*target, *n)
		if err != nil {
			return err
		}
		fuzz = func(onResult func(campaign.Outcome)) (*campaign.Report, int, error) {
			return explore.FuzzPooledCampaign(s.ctx, c.workers, *n, *steps, *schedules, c.seed, patterns, build, onResult)
		}
	case "fresh":
		build, err := explore.TargetBuilder(*target, *n)
		if err != nil {
			return err
		}
		fuzz = func(onResult func(campaign.Outcome)) (*campaign.Report, int, error) {
			return explore.FuzzCampaign(s.ctx, c.workers, *n, *steps, *schedules, c.seed, patterns, build, onResult)
		}
	default:
		return fmt.Errorf("unknown -engine %q (want pooled or fresh)", *engine)
	}
	if err := s.openSink(); err != nil {
		return err
	}
	rep, runs, err := fuzz(s.sink)
	if err = s.finish(err); err != nil {
		var v *explore.Violation
		if rep != nil && errors.As(err, &v) {
			// Keep stdout parseable in -json mode: the human-readable
			// violation line goes to stderr there.
			dst := w
			if c.jsonOut {
				dst = os.Stderr
			}
			fmt.Fprintf(dst, "VIOLATION after %d runs: %v\n", runs, v)
			if eerr := emit(w, c, "fuzz", fuzzParams(*target, *n, *steps, *schedules), rep); eerr != nil {
				return eerr
			}
			return fmt.Errorf("fuzz campaign found a violation")
		}
		return err
	}
	if err := emit(w, c, "fuzz", fuzzParams(*target, *n, *steps, *schedules), rep); err != nil {
		return err
	}
	return checkDegraded(rep)
}

// cmdExhaustive sweeps every schedule of exactly -depth steps over -n
// processes for the named target. By default the sweep is partial-order
// reduced: one canonical representative per class of schedules that differ
// only by swapping adjacent commuting operations, with the states-explored
// accounting in the summary. -reduce=false runs the full n^depth enumeration
// on the campaign engine instead (the reduction's ground truth).
func cmdExhaustive(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("exhaustive", flag.ExitOnError)
	var c common
	c.register(fs)
	target := fs.String("target", explore.TargetCommitAdopt, "protocol to explore (commitadopt|consensus|cachain|kset|bg)")
	n := fs.Int("n", 2, "number of processes (1..4)")
	depth := fs.Int("depth", 10, "schedule length (every schedule of exactly this depth)")
	reduce := fs.Bool("reduce", true, "prune commutation-equivalent schedules (sleep-set partial-order reduction)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	params := map[string]any{"target": *target, "n": *n, "depth": *depth, "reduce": *reduce}
	if *reduce && c.resilienceRequested() {
		return fmt.Errorf("the reduced exhaustive sweep is a single sequential explorer; checkpoint/chaos flags need the campaign engine (-reduce=false)")
	}
	s, err := c.begin(ctx, "exhaustive", args, params)
	if err != nil {
		return err
	}
	defer s.close()
	build, err := explore.PooledTargetBuilder(*target, *n)
	if err != nil {
		return err
	}
	if !*reduce {
		if err := s.openSink(); err != nil {
			return err
		}
		rep, runs, err := explore.ExhaustivePooledCampaign(s.ctx, c.workers, *n, *depth, build, s.sink)
		if err = s.finish(err); err != nil {
			var v *explore.Violation
			if rep != nil && errors.As(err, &v) {
				dst := w
				if c.jsonOut {
					dst = os.Stderr
				}
				fmt.Fprintf(dst, "VIOLATION after %d runs: %v\n", runs, v)
				if eerr := emit(w, c, "exhaustive", params, rep); eerr != nil {
					return eerr
				}
				return fmt.Errorf("exhaustive campaign found a violation")
			}
			return err
		}
		if err := emit(w, c, "exhaustive", params, rep); err != nil {
			return err
		}
		return checkDegraded(rep)
	}
	stats, err := explore.ExhaustiveReduced(*n, *depth, build)
	summary := struct {
		Campaign  string               `json:"campaign"`
		Params    map[string]any       `json:"params"`
		Stats     explore.ReducedStats `json:"stats"`
		Reduction float64              `json:"reduction"`
	}{"exhaustive", params, stats, stats.Ratio()}
	if err != nil {
		var v *explore.Violation
		if errors.As(err, &v) {
			dst := w
			if c.jsonOut {
				dst = os.Stderr
			}
			fmt.Fprintf(dst, "VIOLATION after %d canonical schedules: %v\n", stats.Schedules, v)
			if c.jsonOut {
				if eerr := json.NewEncoder(w).Encode(summary); eerr != nil {
					return eerr
				}
			}
			return fmt.Errorf("exhaustive sweep found a violation")
		}
		return err
	}
	if c.jsonOut {
		return json.NewEncoder(w).Encode(summary)
	}
	fmt.Fprintf(w, "exhaustive %s: n=%d depth=%d: %d of %d schedules executed (%.1fx reduction), %d states expanded, %d simulator steps\n",
		*target, *n, *depth, stats.Schedules, stats.Total, stats.Ratio(), stats.States, stats.Steps)
	return nil
}

func fuzzParams(target string, n, steps, schedules int) map[string]any {
	return map[string]any{"target": target, "n": n, "steps": steps, "schedules": schedules}
}

// parseCrashPatterns parses "p1@3;p2@0,p4@9": patterns separated by ';',
// each a comma-separated list of proc@steps entries.
func parseCrashPatterns(spec string) ([]map[procset.ID]int, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var patterns []map[procset.ID]int
	for _, pat := range strings.Split(spec, ";") {
		m := make(map[procset.ID]int)
		for _, entry := range strings.Split(pat, ",") {
			entry = strings.TrimSpace(entry)
			if entry == "" {
				continue
			}
			procText, stepText, found := strings.Cut(entry, "@")
			if !found {
				return nil, fmt.Errorf("bad crash entry %q (want p<i>@<steps>)", entry)
			}
			procText = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(procText), "p"))
			id, err := strconv.Atoi(procText)
			if err != nil {
				return nil, fmt.Errorf("bad crash entry %q: %v", entry, err)
			}
			at, err := strconv.Atoi(strings.TrimSpace(stepText))
			if err != nil {
				return nil, fmt.Errorf("bad crash entry %q: %v", entry, err)
			}
			m[procset.ID(id)] = at
		}
		if len(m) > 0 {
			patterns = append(patterns, m)
		}
	}
	return patterns, nil
}

func cmdAdversarial(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("adversarial", flag.ExitOnError)
	var c common
	c.register(fs)
	n := fs.Int("n", 4, "number of processes (solver runs at k = t = n/2)")
	steps := fs.Int("steps", 100_000, "step horizon per run")
	runs := fs.Int("runs", 32, "number of runs (cycles through the crash-pattern population)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	params := map[string]any{"n": *n, "steps": *steps, "runs": *runs}
	s, err := c.begin(ctx, "adversarial", args, params)
	if err != nil {
		return err
	}
	defer s.close()
	if err := s.openSink(); err != nil {
		return err
	}
	rep, executed, err := explore.AdversarialPooledCampaign(s.ctx, c.workers, *n, *steps, *runs, c.seed, s.sink)
	if err = s.finish(err); err != nil {
		if rep != nil {
			dst := w
			if c.jsonOut {
				dst = os.Stderr
			}
			fmt.Fprintf(dst, "FAILED after %d runs: %v\n", executed, err)
			if eerr := emit(w, c, "adversarial", params, rep); eerr != nil {
				return eerr
			}
			return fmt.Errorf("adversarial campaign failed")
		}
		return err
	}
	if err := emit(w, c, "adversarial", params, rep); err != nil {
		return err
	}
	return checkDegraded(rep)
}

// cmdByzantine sweeps the Byzantine degradation grid: (crash count × byz
// count × corruption strategy) cells against one workload, each cell
// classified safe/degraded/violated over its runs. Violated cells are data
// — the sweep exits 0 when it completes — and the matrix is invariant under
// -workers and -procs.
func cmdByzantine(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("byzantine", flag.ExitOnError)
	var c common
	c.register(fs)
	target := fs.String("target", explore.TargetConsensus, "workload: commitadopt|consensus|cachain|kset|bg|antiomega")
	n := fs.Int("n", 3, "number of processes")
	crashRange := fs.String("crash", "0:1", "crash counts swept (value or lo:hi range)")
	byzRange := fs.String("byz", "0:1", "Byzantine counts swept (value or lo:hi range)")
	strategies := fs.String("strategies", "flip,stale,split", "comma-separated corruption strategies for byz ≥ 1 cells")
	runs := fs.Int("runs", 32, "runs per cell (each draws its own fault population)")
	steps := fs.Int("steps", 100_000, "step horizon per run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	crashLo, crashHi, err := parseRange(*crashRange)
	if err != nil {
		return err
	}
	byzLo, byzHi, err := parseRange(*byzRange)
	if err != nil {
		return err
	}
	if crashLo != 0 || byzLo != 0 {
		return fmt.Errorf("byzantine: crash and byz ranges must start at 0 (the honest baseline anchors the matrix), got %s and %s", *crashRange, *byzRange)
	}
	var strats []adversary.Strategy
	for _, s := range strings.Split(*strategies, ",") {
		st, err := adversary.ParseStrategy(s)
		if err != nil {
			return err
		}
		if st == adversary.StrategyNone {
			return fmt.Errorf("byzantine: strategy \"none\" is implicit in the byz=0 cells; sweep real strategies")
		}
		strats = append(strats, st)
	}
	params := map[string]any{
		"target": *target, "n": *n, "crash": crashHi, "byz": byzHi,
		"strategies": *strategies, "runs": *runs, "steps": *steps,
	}
	s, err := c.begin(ctx, "byzantine", args, params)
	if err != nil {
		return err
	}
	defer s.close()
	if err := s.openSink(); err != nil {
		return err
	}
	rep, cells, err := explore.ByzantineCampaign(s.ctx, explore.ByzConfig{
		Target:     *target,
		N:          *n,
		CrashMax:   crashHi,
		ByzMax:     byzHi,
		Strategies: strats,
		Runs:       *runs,
		Steps:      *steps,
		Seed:       c.seed,
		Workers:    c.workers,
	}, s.sink)
	if err = s.finish(err); err != nil {
		return err
	}
	if c.jsonOut {
		enc := json.NewEncoder(w)
		if err := enc.Encode(struct {
			record
			Cells []explore.ByzCell `json:"cells"`
		}{record{
			Campaign:  "byzantine",
			Params:    params,
			Seed:      c.seed,
			Workers:   rep.Workers,
			ElapsedNS: int64(rep.Elapsed),
			Summary:   rep.Summary,
		}, cells}); err != nil {
			return err
		}
	} else {
		tb := trace.NewTable(
			fmt.Sprintf("Byzantine degradation matrix: %s, n=%d, %d runs/cell", *target, *n, *runs),
			"crash", "byz", "strategy", "safe", "degraded", "violated", "class")
		for _, cell := range cells {
			tb.AddRow(cell.Crash, cell.Byz, cell.Strategy, cell.Safe, cell.Degraded, cell.Violated, cell.Class)
		}
		fmt.Fprintln(w, tb.Render())
		for _, cell := range cells {
			if cell.Violation != nil {
				fmt.Fprintf(w, "cell c%d b%d %s first violation: %v\n", cell.Crash, cell.Byz, cell.Strategy, cell.Violation.Err)
				if cell.Violation.Trace != "" {
					fmt.Fprintln(w, cell.Violation.Trace)
				}
				if cell.Violation.Flight != "" {
					fmt.Fprint(w, cell.Violation.Flight)
				}
			}
		}
		if err := emit(w, c, "byzantine", params, rep); err != nil {
			return err
		}
	}
	return checkDegraded(rep)
}

// cmdNetConv sweeps detector convergence over graded link matrices: for
// each named msgnet matrix, many (schedule, delay) samples of the heartbeat
// Ω detector, tallying convergence, elected leaders, and the per-link
// grades an online obs.LinkMonitor extracted from the deliveries. The whole
// matrix is invariant under -workers and -procs.
func cmdNetConv(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("netconv", flag.ExitOnError)
	var c common
	c.register(fs)
	n := fs.Int("n", 4, "number of processes (the mixed matrix needs ≥ 3)")
	matrices := fs.String("matrices", "", "comma-separated link matrices to sweep: sync,psync,async,mixed (empty = all)")
	delta := fs.Int("delta", 2, "timely grades' delivery bound Δ")
	gst := fs.Int("gst", 0, "partial-synchrony stabilization step (0 = steps/4)")
	probe := fs.Int("probe", 0, "link monitor probe bound (0 = Δ + 3n(n−1), absorbing scheduling dilation)")
	wild := fs.Int("wild", 0, "unbounded-regime delivery bound (0 = msgnet default)")
	runs := fs.Int("runs", 32, "samples per matrix")
	steps := fs.Int("steps", 20_000, "step horizon per run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var names []string
	for _, m := range strings.Split(*matrices, ",") {
		if m = strings.TrimSpace(m); m != "" {
			names = append(names, m)
		}
	}
	params := map[string]any{
		"n": *n, "matrices": strings.Join(names, ","), "delta": *delta, "gst": *gst,
		"probe": *probe, "wild": *wild, "runs": *runs, "steps": *steps,
	}
	s, err := c.begin(ctx, "netconv", args, params)
	if err != nil {
		return err
	}
	defer s.close()
	if err := s.openSink(); err != nil {
		return err
	}
	rep, cells, err := explore.NetConvCampaign(s.ctx, explore.NetConvConfig{
		Matrices: names,
		N:        *n,
		Delta:    *delta,
		GST:      *gst,
		Probe:    *probe,
		Wild:     *wild,
		Runs:     *runs,
		Steps:    *steps,
		Seed:     c.seed,
		Workers:  c.workers,
	}, s.sink)
	if err = s.finish(err); err != nil {
		return err
	}
	if c.jsonOut {
		return json.NewEncoder(w).Encode(struct {
			record
			Cells []explore.NetCell `json:"cells"`
		}{record{
			Campaign:  "netconv",
			Params:    params,
			Seed:      c.seed,
			Workers:   rep.Workers,
			ElapsedNS: int64(rep.Elapsed),
			Summary:   rep.Summary,
		}, cells})
	}
	tb := trace.NewTable(
		fmt.Sprintf("detector convergence over graded link matrices: n=%d, %d runs/matrix", *n, *runs),
		"matrix", "runs", "converged", "split", "top leader", "top grades")
	for _, cell := range cells {
		leader, grades := "-", "-"
		if len(cell.Leaders) > 0 {
			leader = fmt.Sprintf("%s ×%d", cell.Leaders[0].Leader, cell.Leaders[0].Count)
		}
		if len(cell.Grades) > 0 {
			grades = fmt.Sprintf("%s ×%d", cell.Grades[0].Grades, cell.Grades[0].Count)
		}
		tb.AddRow(cell.Matrix, cell.Runs, cell.Converged, cell.Split, leader, grades)
	}
	fmt.Fprintln(w, tb.Render())
	for _, cell := range cells {
		fmt.Fprintf(w, "%s sample: %s\n", cell.Matrix, cell.Sample)
	}
	if err := emit(w, c, "netconv", params, rep); err != nil {
		return err
	}
	return checkDegraded(rep)
}

func cmdConverge(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("converge", flag.ExitOnError)
	var c common
	c.register(fs)
	n := fs.Int("n", 4, "system size n")
	k := fs.Int("k", 2, "detector parameter k")
	t := fs.Int("t", 2, "resilience t")
	bound := fs.Int("bound", 4, "Definition 1 bound enforced by the generator")
	trials := fs.Int("trials", 32, "independent trials")
	maxSteps := fs.Int("maxsteps", 2_000_000, "step budget per trial")
	if err := fs.Parse(args); err != nil {
		return err
	}
	params := map[string]any{"n": *n, "k": *k, "t": *t, "bound": *bound, "trials": *trials}
	s, err := c.begin(ctx, "converge", args, params)
	if err != nil {
		return err
	}
	defer s.close()
	if err := s.openSink(); err != nil {
		return err
	}
	rep, err := experiments.RunConvergenceSweep(s.ctx, experiments.ConvergenceConfig{
		N: *n, K: *k, T: *t, Bound: *bound, Trials: *trials, MaxSteps: *maxSteps, Workers: c.workers,
	}, c.seed, s.sink)
	if err = s.finish(err); err != nil {
		return err
	}
	if err := emit(w, c, "converge", params, rep); err != nil {
		return err
	}
	if rep.Summary.Failed > 0 {
		return fmt.Errorf("%d trials failed to converge or violated the property", rep.Summary.Failed)
	}
	return checkDegraded(rep)
}

func cmdRelations(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("relations", flag.ExitOnError)
	var c common
	c.register(fs)
	n := fs.Int("n", 4, "system size n (2..6)")
	bound := fs.Int("bound", 4, "Definition 1 bound tested")
	steps := fs.Int("steps", 2000, "prefix length analyzed per schedule")
	schedules := fs.Int("schedules", 100, "population size")
	gen := fs.String("gen", "mixed", "schedule generator: random|starver|mixed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	params := map[string]any{"n": *n, "bound": *bound, "steps": *steps, "schedules": *schedules, "gen": *gen}
	s, err := c.begin(ctx, "relations", args, params)
	if err != nil {
		return err
	}
	defer s.close()
	if err := s.openSink(); err != nil {
		return err
	}
	rep, err := experiments.RunRelationsCampaign(s.ctx, experiments.RelationsConfig{
		N: *n, Bound: *bound, Steps: *steps, Schedules: *schedules, Generator: *gen, Workers: c.workers,
	}, c.seed, s.sink)
	if err = s.finish(err); err != nil {
		return err
	}
	if !c.jsonOut {
		tb := trace.NewTable(
			fmt.Sprintf("empirical timeliness relations over %d schedules (bound %d)", rep.Summary.Completed, *bound),
			"system", "held", "fraction")
		for i := 1; i <= *n; i++ {
			for j := i; j <= *n; j++ {
				held := rep.Summary.Tallies[experiments.RelationKey(i, j)]
				frac := 0.0
				if rep.Summary.Completed > 0 {
					frac = float64(held) / float64(rep.Summary.Completed)
				}
				tb.AddRow(fmt.Sprintf("S^%d_{%d,%d}", i, j, *n), held, fmt.Sprintf("%.2f", frac))
			}
		}
		fmt.Fprintln(w, tb.Render())
	}
	if err := emit(w, c, "relations", params, rep); err != nil {
		return err
	}
	return checkDegraded(rep)
}

// segmentSwitcher alternates between two sources in fixed-length segments,
// exercising the monitor across regime changes (random churn versus
// adversarial starvation) within a single run. Both regimes recur forever,
// so the correct set is the union.
type segmentSwitcher struct {
	a, b sched.Source
	seg  int
	pos  int
	onB  bool
}

func (s *segmentSwitcher) Next() procset.ID {
	if s.pos == s.seg {
		s.pos, s.onB = 0, !s.onB
	}
	s.pos++
	if s.onB {
		return s.b.Next()
	}
	return s.a.Next()
}

func (s *segmentSwitcher) N() int               { return s.a.N() }
func (s *segmentSwitcher) Correct() procset.Set { return s.a.Correct().Union(s.b.Correct()) }

// monitorSource builds the schedule source for the monitor subcommand,
// mirroring the relations campaign's generator choices.
func monitorSource(gen string, n int, seed int64) (sched.Source, error) {
	starver := func() (sched.Source, error) {
		k := int(uint64(seed)%uint64(n-1)) + 1
		return sched.RotatingStarver(n, k, 1)
	}
	switch gen {
	case "random":
		return sched.Random(n, seed, nil)
	case "starver":
		return starver()
	case "mixed":
		a, err := sched.Random(n, seed, nil)
		if err != nil {
			return nil, err
		}
		b, err := starver()
		if err != nil {
			return nil, err
		}
		return &segmentSwitcher{a: a, b: b, seg: 512}, nil
	default:
		return nil, fmt.Errorf("unknown -gen %q (want random|starver|mixed)", gen)
	}
}

func printGraph(w io.Writer, title string, graph []obs.SystemStatus, n int) {
	tb := trace.NewTable(title, "system", "held", "best P", "best Q", "min bound")
	for _, st := range graph {
		held := "no"
		if st.Held {
			held = "yes"
		}
		tb.AddRow(fmt.Sprintf("S^%d_{%d,%d}", st.I, st.J, n), held, st.BestP, st.BestQ, st.MinBound)
	}
	fmt.Fprintln(w, tb.Render())
}

// cmdMonitor runs the online timeliness-graph monitor over a generated
// schedule, printing the graph periodically and cross-checking the final
// state against the batch extractor on the retained schedule.
func cmdMonitor(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("monitor", flag.ExitOnError)
	var c common
	c.register(fs)
	n := fs.Int("n", 4, "system size n (2..6)")
	gen := fs.String("gen", "mixed", "schedule generator: random|starver|mixed")
	steps := fs.Int("steps", 4096, "steps to observe")
	every := fs.Int("every", 1024, "print the timeliness graph every E steps (0 = final only)")
	bound := fs.Int("bound", 4, "Definition 1 bound probed by the graph")
	window := fs.Int("window", 0, "sliding-window size for the recent view (0 = cumulative only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 2 || *n > 6 {
		return fmt.Errorf("monitor tracks the full S^i_{j,n} family, which needs 2 <= n <= 6 (got %d)", *n)
	}
	if *steps < 1 {
		return fmt.Errorf("-steps must be positive")
	}
	s, err := c.begin(ctx, "monitor", args,
		map[string]any{"n": *n, "gen": *gen, "steps": *steps, "every": *every, "bound": *bound, "window": *window})
	if err != nil {
		return err
	}
	defer s.close()
	ctx = s.ctx
	src, err := monitorSource(*gen, *n, c.seed)
	if err != nil {
		return err
	}
	m, err := obs.NewMonitor(obs.MonitorConfig{N: *n, Window: *window})
	if err != nil {
		return err
	}
	if c.pprofAddr != "" {
		obs.Publish("monitor", func() any {
			return map[string]any{"steps": m.Steps(), "graph": m.Graph(*bound)}
		})
	}

	// Feed the monitor in blocks (the bulk path the engines use), retaining
	// the full schedule so the final state can be cross-checked below.
	full := make(sched.Schedule, 0, *steps)
	var block [256]procset.ID
	nextPrint := *steps
	if *every > 0 {
		nextPrint = *every
	}
	for done := 0; done < *steps; {
		if ctx.Err() != nil {
			return fmt.Errorf("interrupted after %d steps", done)
		}
		k := len(block)
		if rem := *steps - done; rem < k {
			k = rem
		}
		if rem := nextPrint - done; rem < k {
			k = rem
		}
		sched.FillBlock(src, block[:k])
		m.ObserveBlock(block[:k])
		full = append(full, block[:k]...)
		done += k
		if done == nextPrint {
			if *every > 0 && !c.jsonOut {
				printGraph(w, fmt.Sprintf("timeliness graph after %d steps (bound %d)", m.Steps(), *bound), m.Graph(*bound), *n)
				if *window > 0 {
					win := len(m.WindowSchedule())
					printGraph(w, fmt.Sprintf("recent view: last %d steps (bound %d)", win, *bound), m.RecentGraph(*bound), *n)
				}
				nextPrint += *every
			} else {
				nextPrint = *steps
			}
		}
	}

	// The online monitor must agree with the batch extractor on the schedule
	// it just observed; a mismatch is a bug, not a measurement.
	for i := 1; i <= *n; i++ {
		for j := i; j <= *n; j++ {
			if got, want := m.Best(i, j), sched.BestPair(full, *n, i, j); got != want {
				return fmt.Errorf("monitor disagrees with batch extractor on S^%d_{%d,%d}: online %+v, batch %+v", i, j, *n, got, want)
			}
			if got, want := m.InSystem(i, j, *bound), sched.InSystem(full, *n, i, j, *bound); got != want {
				return fmt.Errorf("monitor InSystem(%d,%d,%d) = %v, batch says %v", i, j, *bound, got, want)
			}
		}
	}

	if c.jsonOut {
		out := struct {
			Campaign string             `json:"campaign"`
			Params   map[string]any     `json:"params"`
			Seed     int64              `json:"seed"`
			Steps    int                `json:"steps"`
			Graph    []obs.SystemStatus `json:"graph"`
			Recent   []obs.SystemStatus `json:"recent,omitempty"`
		}{
			Campaign: "monitor",
			Params:   map[string]any{"n": *n, "gen": *gen, "every": *every, "bound": *bound, "window": *window},
			Seed:     c.seed,
			Steps:    m.Steps(),
			Graph:    m.Graph(*bound),
		}
		if *window > 0 {
			out.Recent = m.RecentGraph(*bound)
		}
		return json.NewEncoder(w).Encode(out)
	}
	if *every <= 0 || *steps%*every != 0 {
		printGraph(w, fmt.Sprintf("timeliness graph after %d steps (bound %d)", m.Steps(), *bound), m.Graph(*bound), *n)
		if *window > 0 {
			win := len(m.WindowSchedule())
			printGraph(w, fmt.Sprintf("recent view: last %d steps (bound %d)", win, *bound), m.RecentGraph(*bound), *n)
		}
	}
	fmt.Fprintf(w, "monitor: %d steps observed, online state verified against the batch extractor\n", m.Steps())
	return nil
}
