// stm-bench runs the experiment suite that regenerates every figure and
// theorem of the paper, printing each experiment's tables and verdict.
//
//	stm-bench                 run everything at full budgets
//	stm-bench -quick          reduced budgets
//	stm-bench -id E5          a single experiment
//	stm-bench -markdown       emit tables as markdown (for EXPERIMENTS.md)
//	stm-bench -json           one machine-readable record per experiment
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"github.com/settimeliness/settimeliness/internal/experiments"
	"github.com/settimeliness/settimeliness/internal/obs"
)

func main() {
	// The profile writers below are deferred; funnel every exit through a
	// normal return so they run (os.Exit would truncate the CPU profile).
	os.Exit(mainRun())
}

func mainRun() int {
	var (
		quick      = flag.Bool("quick", false, "reduced budgets")
		id         = flag.String("id", "", "run a single experiment (E1..E9)")
		seed       = flag.Int64("seed", 1, "base seed")
		markdown   = flag.Bool("markdown", false, "emit tables as markdown")
		jsonOut    = flag.Bool("json", false, "emit one JSON record per experiment (for perf tracking)")
		gogc       = flag.Int("gogc", 400, "GC target percentage for this batch run (0 leaves the runtime default); the BG experiments allocate an immutable value per write step, and a short-lived batch tool prefers fewer collections over a small heap")
		pprofAddr  = flag.String("pprof", "", "serve pprof and expvar debug endpoints on this address while the suite runs (e.g. localhost:6060)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the suite to this file (the PGO recipe: run -quick -cpuprofile and commit the output as cmd/stm-bench/default.pgo)")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file when the suite finishes")
	)
	flag.Parse()
	if *gogc > 0 && os.Getenv("GOGC") == "" {
		debug.SetGCPercent(*gogc)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stm-bench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "stm-bench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "stm-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "stm-bench: %v\n", err)
			}
		}()
	}
	if *pprofAddr != "" {
		ds, err := obs.ServeDebug(*pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stm-bench: %v\n", err)
			return 1
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "stm-bench: debug endpoints on http://%s/debug/\n", ds.Addr())
	}
	if err := run(os.Stdout, *quick, *id, *seed, *markdown, *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "stm-bench: %v\n", err)
		return 1
	}
	return 0
}

// benchRecord is the -json line emitted per experiment: enough to track the
// reproduction status and wall-clock trajectory across commits.
type benchRecord struct {
	ID        string `json:"id"`
	Title     string `json:"title"`
	Pass      bool   `json:"pass"`
	ElapsedNS int64  `json:"elapsed_ns"`
	Quick     bool   `json:"quick"`
	Seed      int64  `json:"seed"`
}

// benchProgress is the "bench" expvar: where the suite is right now, for
// operators scraping /debug/vars during a long run.
type benchProgress struct {
	Current   string `json:"current,omitempty"`
	Completed int    `json:"completed"`
	Total     int    `json:"total"`
	Failures  int    `json:"failures"`
}

func run(w io.Writer, quick bool, id string, seed int64, markdown, jsonOut bool) error {
	cfg := experiments.Config{Quick: quick, Seed: seed}
	list := experiments.All()
	if id != "" {
		e, err := experiments.ByID(id)
		if err != nil {
			return err
		}
		list = []experiments.Experiment{e}
	}
	var progress atomic.Value
	progress.Store(benchProgress{Total: len(list)})
	obs.Publish("bench", progress.Load)
	enc := json.NewEncoder(w)
	failures := 0
	for i, e := range list {
		progress.Store(benchProgress{Current: e.ID, Completed: i, Total: len(list), Failures: failures})
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		switch {
		case jsonOut:
			if err := enc.Encode(benchRecord{
				ID: res.ID, Title: res.Title, Pass: res.Pass,
				ElapsedNS: int64(time.Since(start)), Quick: quick, Seed: seed,
			}); err != nil {
				return err
			}
		case markdown:
			status := "REPRODUCED"
			if !res.Pass {
				status = "FAILED"
			}
			fmt.Fprintf(w, "### %s — %s [%s]\n\n> %s\n\n", res.ID, res.Title, status, res.Claim)
			for _, note := range res.Notes {
				fmt.Fprintf(w, "*%s*\n\n", note)
			}
			for _, tb := range res.Tables {
				fmt.Fprintln(w, tb.Markdown())
			}
		default:
			fmt.Fprintln(w, res.Render())
			fmt.Fprintln(w)
		}
		if !res.Pass {
			failures++
		}
	}
	progress.Store(benchProgress{Completed: len(list), Total: len(list), Failures: failures})
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) did not reproduce", failures)
	}
	return nil
}
