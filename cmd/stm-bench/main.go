// stm-bench runs the experiment suite that regenerates every figure and
// theorem of the paper, printing each experiment's tables and verdict.
//
//	stm-bench                 run everything at full budgets
//	stm-bench -quick          reduced budgets
//	stm-bench -id E5          a single experiment
//	stm-bench -markdown       emit tables as markdown (for EXPERIMENTS.md)
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/settimeliness/settimeliness/internal/experiments"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "reduced budgets")
		id       = flag.String("id", "", "run a single experiment (E1..E8)")
		seed     = flag.Int64("seed", 1, "base seed")
		markdown = flag.Bool("markdown", false, "emit tables as markdown")
	)
	flag.Parse()
	if err := run(*quick, *id, *seed, *markdown); err != nil {
		fmt.Fprintf(os.Stderr, "stm-bench: %v\n", err)
		os.Exit(1)
	}
}

func run(quick bool, id string, seed int64, markdown bool) error {
	cfg := experiments.Config{Quick: quick, Seed: seed}
	list := experiments.All()
	if id != "" {
		e, err := experiments.ByID(id)
		if err != nil {
			return err
		}
		list = []experiments.Experiment{e}
	}
	failures := 0
	for _, e := range list {
		res, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if markdown {
			status := "REPRODUCED"
			if !res.Pass {
				status = "FAILED"
			}
			fmt.Printf("### %s — %s [%s]\n\n> %s\n\n", res.ID, res.Title, status, res.Claim)
			for _, note := range res.Notes {
				fmt.Printf("*%s*\n\n", note)
			}
			for _, tb := range res.Tables {
				fmt.Println(tb.Markdown())
			}
		} else {
			fmt.Println(res.Render())
			fmt.Println()
		}
		if !res.Pass {
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) did not reproduce", failures)
	}
	return nil
}
