package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// E1 is pure schedule analysis — fast enough to smoke the runner through
// every output mode.

func TestRunSingleExperiment(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	if err := run(&out, true, "E1", 1, false, false); err != nil {
		t.Fatalf("E1 failed: %v", err)
	}
	if !strings.Contains(out.String(), "E1") || !strings.Contains(out.String(), "REPRODUCED") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

func TestRunMarkdownMode(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	if err := run(&out, true, "E1", 1, true, false); err != nil {
		t.Fatalf("E1 markdown failed: %v", err)
	}
	if !strings.Contains(out.String(), "### E1") {
		t.Errorf("markdown heading missing:\n%s", out.String())
	}
}

func TestRunJSONMode(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	if err := run(&out, true, "E1", 1, false, true); err != nil {
		t.Fatalf("E1 json failed: %v", err)
	}
	var rec benchRecord
	if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
		t.Fatalf("non-JSON output: %v\n%s", err, out.String())
	}
	if rec.ID != "E1" || !rec.Pass || rec.ElapsedNS <= 0 || !rec.Quick {
		t.Errorf("record = %+v", rec)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	t.Parallel()
	if err := run(&bytes.Buffer{}, true, "E99", 1, false, false); err == nil {
		t.Error("unknown experiment accepted")
	}
}
