package main

import "testing"

func TestCmdFigure1(t *testing.T) {
	if err := cmdFigure1([]string{"-rounds", "3"}); err != nil {
		t.Errorf("figure1 failed: %v", err)
	}
}

func TestCmdAnalyze(t *testing.T) {
	if err := cmdAnalyze([]string{
		"-schedule", "p1 p3 p2 p3 p1",
		"-p", "{p1,p2}",
		"-q", "{p3}",
	}); err != nil {
		t.Errorf("analyze failed: %v", err)
	}
	if err := cmdAnalyze([]string{"-schedule", "junk !", "-p", "{p1}", "-q", "{p2}"}); err == nil {
		t.Error("unparseable schedule accepted")
	}
}

func TestCmdGen(t *testing.T) {
	for _, typ := range []string{"roundrobin", "random", "starver"} {
		if err := cmdGen([]string{"-type", typ, "-n", "4", "-k", "2", "-steps", "12"}); err != nil {
			t.Errorf("gen %s failed: %v", typ, err)
		}
	}
	if err := cmdGen([]string{"-type", "nope"}); err == nil {
		t.Error("unknown generator accepted")
	}
}
