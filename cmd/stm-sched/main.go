// stm-sched generates schedules and analyzes set timeliness (Definition 1).
//
//	stm-sched figure1 -rounds 6
//	stm-sched analyze -schedule "p1 p3 p2 p3 p1" -p "{p1,p2}" -q "{p3}"
//	stm-sched gen -type starver -n 4 -k 2 -steps 40
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/settimeliness/settimeliness/internal/procset"
	"github.com/settimeliness/settimeliness/internal/sched"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "figure1":
		err = cmdFigure1(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "gen":
		err = cmdGen(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "stm-sched: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  stm-sched figure1 -rounds N             print Figure 1 prefix and its bounds
  stm-sched analyze -schedule S -p P -q Q analyze Definition 1 for sets P, Q
  stm-sched gen -type T -n N -steps S     generate a schedule (roundrobin|random|starver)`)
}

func cmdFigure1(args []string) error {
	fs := flag.NewFlagSet("figure1", flag.ExitOnError)
	rounds := fs.Int("rounds", 4, "number of rounds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := sched.Figure1Prefix(1, 2, 3, *rounds)
	fmt.Printf("S = %v\n", s)
	for _, set := range []procset.Set{procset.MakeSet(1), procset.MakeSet(2), procset.MakeSet(1, 2)} {
		fmt.Printf("minBound(%v, {p3}) = %d\n", set, sched.MinBound(s, set, procset.MakeSet(3)))
	}
	return nil
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	scheduleText := fs.String("schedule", "", "schedule, e.g. \"p1 p3 p2\"")
	pText := fs.String("p", "", "set P, e.g. \"{p1,p2}\"")
	qText := fs.String("q", "", "set Q, e.g. \"{p3}\"")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := sched.Parse(*scheduleText)
	if err != nil {
		return err
	}
	p, err := procset.Parse(*pText)
	if err != nil {
		return err
	}
	q, err := procset.Parse(*qText)
	if err != nil {
		return err
	}
	fmt.Printf("schedule length: %d, participants: %v\n", len(s), s.Participants())
	fmt.Printf("max %v-gap without %v: %d\n", q, p, sched.MaxQGap(s, p, q))
	fmt.Printf("minimal Definition 1 bound: %d\n", sched.MinBound(s, p, q))
	fmt.Printf("gap profile: %v\n", sched.GapProfile(s, p, q))
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	typ := fs.String("type", "roundrobin", "roundrobin|random|starver")
	n := fs.Int("n", 4, "number of processes")
	k := fs.Int("k", 2, "starvation parameter (starver only)")
	steps := fs.Int("steps", 32, "steps to emit")
	seed := fs.Int64("seed", 1, "seed (random only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		src sched.Source
		err error
	)
	switch *typ {
	case "roundrobin":
		src, err = sched.RoundRobin(*n, nil)
	case "random":
		src, err = sched.Random(*n, *seed, nil)
	case "starver":
		src, err = sched.RotatingStarver(*n, *k, 1)
	default:
		return fmt.Errorf("unknown type %q", *typ)
	}
	if err != nil {
		return err
	}
	s := sched.Take(src, *steps)
	fmt.Println(s)
	return nil
}
