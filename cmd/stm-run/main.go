// stm-run executes a single (t,k,n)-agreement run in a chosen system
// S^i_{j,n} on the deterministic simulator and reports the outcome.
//
//	stm-run -t 2 -k 2 -n 4
//	stm-run -t 3 -k 2 -n 5 -i 2 -j 4 -crashes "4:30,5:0" -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	stm "github.com/settimeliness/settimeliness"
)

func main() {
	var (
		t       = flag.Int("t", 2, "resilience t")
		k       = flag.Int("k", 2, "agreement parameter k")
		n       = flag.Int("n", 4, "number of processes n")
		i       = flag.Int("i", 0, "system parameter i (0 = matching system)")
		j       = flag.Int("j", 0, "system parameter j (0 = matching system)")
		seed    = flag.Int64("seed", 1, "schedule seed")
		steps   = flag.Int("steps", 0, "step budget (0 = default)")
		crashes = flag.String("crashes", "", "crash pattern, e.g. \"4:30,5:0\" (process:steps)")
	)
	flag.Parse()
	if err := run(*t, *k, *n, *i, *j, *seed, *steps, *crashes); err != nil {
		fmt.Fprintf(os.Stderr, "stm-run: %v\n", err)
		os.Exit(1)
	}
}

func parseCrashes(spec string) (map[stm.ProcID]int, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[stm.ProcID]int)
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad crash entry %q (want process:steps)", part)
		}
		p, err := strconv.Atoi(strings.TrimPrefix(kv[0], "p"))
		if err != nil {
			return nil, fmt.Errorf("bad process in %q: %w", part, err)
		}
		s, err := strconv.Atoi(kv[1])
		if err != nil {
			return nil, fmt.Errorf("bad step count in %q: %w", part, err)
		}
		out[stm.ProcID(p)] = s
	}
	return out, nil
}

func run(t, k, n, i, j int, seed int64, steps int, crashSpec string) error {
	crashes, err := parseCrashes(crashSpec)
	if err != nil {
		return err
	}
	cfg := stm.SolveConfig{
		Problem:  stm.NewProblem(t, k, n),
		Seed:     seed,
		MaxSteps: steps,
		Crashes:  crashes,
	}
	if i != 0 || j != 0 {
		cfg.System = stm.Sij(i, j, n)
	} else {
		cfg.System = stm.MatchingSystem(t, k, n)
	}
	fmt.Printf("problem: %v   system: %v   seed: %d\n", cfg.Problem, cfg.System, seed)

	res, err := stm.Solve(context.Background(), stm.WithSolveConfig(cfg))
	if err != nil {
		return err
	}
	fmt.Printf("decided: %v in %d steps; correct = %v; %d distinct value(s)\n",
		res.Decided, res.Steps, res.Correct, res.Distinct)
	for p := stm.ProcID(1); p <= stm.ProcID(n); p++ {
		if v, ok := res.Decisions[p]; ok {
			fmt.Printf("  %v -> %v\n", p, v)
		} else {
			fmt.Printf("  %v -> (no decision; crashed)\n", p)
		}
	}
	return nil
}
