package main

import (
	"testing"
)

func TestParseCrashes(t *testing.T) {
	t.Parallel()
	got, err := parseCrashes("4:30, p5:0")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[4] != 30 || got[5] != 0 {
		t.Errorf("parseCrashes = %v", got)
	}
	if got, err := parseCrashes(""); err != nil || got != nil {
		t.Errorf("empty spec = %v, %v", got, err)
	}
	for _, bad := range []string{"4", "x:1", "4:y", "4:1,zz"} {
		if _, err := parseCrashes(bad); err == nil {
			t.Errorf("parseCrashes(%q) accepted", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	t.Parallel()
	if err := run(2, 2, 4, 0, 0, 1, 0, "4:30"); err != nil {
		t.Errorf("matching-system run failed: %v", err)
	}
	if err := run(3, 2, 5, 2, 4, 2, 0, ""); err != nil {
		t.Errorf("explicit boundary cell failed: %v", err)
	}
	if err := run(3, 2, 5, 2, 3, 1, 0, ""); err == nil {
		t.Error("unsolvable cell accepted")
	}
	if err := run(0, 2, 4, 0, 0, 1, 0, ""); err == nil {
		t.Error("invalid t accepted")
	}
	if err := run(2, 2, 4, 0, 0, 1, 0, "bogus"); err == nil {
		t.Error("bad crash spec accepted")
	}
}
