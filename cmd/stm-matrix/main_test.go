package main

import "testing"

func TestTheoreticalMatrix(t *testing.T) {
	t.Parallel()
	if err := run(3, 2, 5, false, 1, 0); err != nil {
		t.Errorf("theoretical matrix failed: %v", err)
	}
	if err := run(0, 2, 5, false, 1, 0); err == nil {
		t.Error("invalid problem accepted")
	}
}

func TestEmpiricalMatrixSmall(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("empirical matrix skipped in -short mode")
	}
	// The smallest nontrivial problem keeps the empirical sweep fast while
	// exercising both solvable and unsolvable cells.
	if err := run(1, 1, 3, true, 1, 2); err != nil {
		t.Errorf("empirical matrix failed: %v", err)
	}
}
