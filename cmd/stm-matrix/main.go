// stm-matrix prints the Theorem 27 solvability matrix for a
// (t,k,n)-agreement problem, optionally validating every cell empirically
// (solvable cells must decide and verify; unsolvable cells must stay safe
// without deciding under the adaptive adversary).
//
//	stm-matrix -t 3 -k 2 -n 5
//	stm-matrix -t 2 -k 2 -n 4 -empirical -workers 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/settimeliness/settimeliness/internal/core"
	"github.com/settimeliness/settimeliness/internal/experiments"
	"github.com/settimeliness/settimeliness/internal/trace"
)

func main() {
	var (
		t         = flag.Int("t", 3, "resilience t")
		k         = flag.Int("k", 2, "agreement parameter k")
		n         = flag.Int("n", 5, "number of processes n")
		empirical = flag.Bool("empirical", false, "run every cell on the simulator")
		seed      = flag.Int64("seed", 1, "schedule seed for empirical runs")
		workers   = flag.Int("workers", 0, "cell workers for -empirical (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if err := run(*t, *k, *n, *empirical, *seed, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "stm-matrix: %v\n", err)
		os.Exit(1)
	}
}

func run(t, k, n int, empirical bool, seed int64, workers int) error {
	p := core.Problem{T: t, K: k, N: n}
	if err := p.Validate(); err != nil {
		return err
	}
	fmt.Printf("%v — solvable in S^i_{j,%d} iff i ≤ %d and j−i ≥ %d (Theorem 27)\n", p, n, k, t+1-k)
	fmt.Printf("matching system: %v\n\n", p.MatchingSystem())

	if !empirical {
		fmt.Print("      ")
		for j := 1; j <= n; j++ {
			fmt.Printf("  j=%-2d", j)
		}
		fmt.Println()
		for i := 1; i <= n; i++ {
			fmt.Printf("  i=%-2d", i)
			for j := 1; j <= n; j++ {
				switch {
				case j < i:
					fmt.Print("     -")
				default:
					ok, err := p.SolvableIn(core.Sij(i, j, n))
					if err != nil {
						return err
					}
					if ok {
						fmt.Print("     Y")
					} else {
						fmt.Print("     .")
					}
				}
			}
			fmt.Println()
		}
		return nil
	}

	cells, _, err := experiments.RunMatrixCampaign(context.Background(), p, seed, 3_000_000, 300_000, workers)
	if err != nil {
		return err
	}
	tb := trace.NewTable("empirical matrix", "i", "j", "theory", "empirical", "match")
	mismatches := 0
	for _, c := range cells {
		theory := "unsolvable"
		if c.Theory {
			theory = "solvable"
		}
		match := "yes"
		if !c.Match {
			match = "NO"
			mismatches++
		}
		tb.AddRow(c.I, c.J, theory, c.Empirical, match)
	}
	fmt.Println(tb.Render())
	if mismatches > 0 {
		return fmt.Errorf("%d cells did not match the characterization", mismatches)
	}
	fmt.Println("all cells match the characterization")
	return nil
}
