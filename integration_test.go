package settimeliness

import (
	"context"
	"fmt"
	"testing"
)

// TestFrontierSweepIntegration walks every solvable (i,j) cell of several
// problems through the public API: the dispatcher must pick a working
// configuration (including the Theorem 27 case 1(b) detector reduction) and
// the run must decide and verify.
func TestFrontierSweepIntegration(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("frontier sweep skipped in -short mode")
	}
	problems := []Problem{
		NewProblem(2, 2, 4),
		NewProblem(3, 2, 5),
		NewProblem(2, 1, 4),
	}
	for _, p := range problems {
		p := p
		for i := 1; i <= p.N; i++ {
			for j := i; j <= p.N; j++ {
				ok, err := Solvable(p.T, p.K, p.N, i, j)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					continue
				}
				i, j := i, j
				t.Run(fmt.Sprintf("%v_in_S%d_%d", p, i, j), func(t *testing.T) {
					t.Parallel()
					res, err := Solve(context.Background(), WithSolveConfig(SolveConfig{
						Problem: p,
						System:  Sij(i, j, p.N),
						Crashes: map[ProcID]int{ProcID(p.N): 30},
						Seed:    int64(i*10 + j),
					}))
					if err != nil {
						t.Fatalf("Solve: %v", err)
					}
					if !res.Decided {
						t.Fatal("did not decide")
					}
					if res.Distinct > p.K {
						t.Fatalf("%d distinct decisions > k = %d", res.Distinct, p.K)
					}
				})
			}
		}
	}
}

// TestMatchingSystemIsWeakestSolvable checks, through the public API, that
// the matching system sits exactly on the frontier: it solves, but weakening
// either parameter by one (i+1, or j−1 when distinct from i) does not.
func TestMatchingSystemIsWeakestSolvable(t *testing.T) {
	t.Parallel()
	for n := 3; n <= 8; n++ {
		for to := 1; to <= n-1; to++ {
			for k := 1; k <= to; k++ {
				m := MatchingSystem(to, k, n)
				ok, err := Solvable(to, k, n, m.I, m.J)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("matching system %v does not solve (%d,%d,%d)", m, to, k, n)
				}
				if m.I+1 <= m.J {
					ok, err = Solvable(to, k, n, m.I+1, m.J)
					if err != nil {
						t.Fatal(err)
					}
					if ok {
						t.Fatalf("S^%d_{%d,%d} should not solve (%d,%d,%d)", m.I+1, m.J, n, to, k, n)
					}
				}
				if m.J-1 >= m.I {
					ok, err = Solvable(to, k, n, m.I, m.J-1)
					if err != nil {
						t.Fatal(err)
					}
					if ok {
						t.Fatalf("S^%d_{%d,%d} should not solve (%d,%d,%d)", m.I, m.J-1, n, to, k, n)
					}
				}
			}
		}
	}
}

// TestAbstractSeparationClaim verifies the abstract's headline through the
// public API: S^k_{t+1,n} is synchronous enough for (t,k,n)-agreement but
// not for (t+1,k,n) or (t,k−1,n); the matching systems of those two are
// S^k_{t+2,n} and S^{k−1}_{t+1,n}.
func TestAbstractSeparationClaim(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ t, k, n int }{{2, 2, 5}, {3, 2, 6}, {3, 3, 7}} {
		m := MatchingSystem(tc.t, tc.k, tc.n)
		if ok, _ := Solvable(tc.t, tc.k, tc.n, m.I, m.J); !ok {
			t.Errorf("(%d,%d,%d) not solvable in its matching system", tc.t, tc.k, tc.n)
		}
		if ok, _ := Solvable(tc.t+1, tc.k, tc.n, m.I, m.J); ok {
			t.Errorf("(%d,%d,%d) solvable in %v", tc.t+1, tc.k, tc.n, m)
		}
		if ok, _ := Solvable(tc.t, tc.k-1, tc.n, m.I, m.J); ok {
			t.Errorf("(%d,%d,%d) solvable in %v", tc.t, tc.k-1, tc.n, m)
		}
		if got := MatchingSystem(tc.t+1, tc.k, tc.n); got != Sij(tc.k, tc.t+2, tc.n) {
			t.Errorf("matching of (t+1,k,n) = %v", got)
		}
		if got := MatchingSystem(tc.t, tc.k-1, tc.n); got != Sij(tc.k-1, tc.t+1, tc.n) {
			t.Errorf("matching of (t,k-1,n) = %v", got)
		}
	}
}
