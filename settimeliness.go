package settimeliness

import (
	"context"
	"fmt"

	"github.com/settimeliness/settimeliness/internal/antiomega"
	"github.com/settimeliness/settimeliness/internal/check"
	"github.com/settimeliness/settimeliness/internal/core"
	"github.com/settimeliness/settimeliness/internal/fd"
	"github.com/settimeliness/settimeliness/internal/kset"
	"github.com/settimeliness/settimeliness/internal/procset"
	"github.com/settimeliness/settimeliness/internal/sched"
	"github.com/settimeliness/settimeliness/internal/sim"
)

// Core model types, re-exported from the internal packages.
type (
	// ProcID identifies a process (1..n).
	ProcID = procset.ID
	// ProcSet is an immutable set of processes.
	ProcSet = procset.Set
	// Schedule is a finite schedule: a sequence of process ids.
	Schedule = sched.Schedule
	// SystemID identifies a partially synchronous system S^i_{j,n}.
	SystemID = core.SystemID
	// Problem identifies a (t,k,n)-agreement instance.
	Problem = core.Problem
)

// NewSet builds a process set from ids.
func NewSet(ids ...ProcID) ProcSet { return procset.MakeSet(ids...) }

// AllProcs returns Πn = {1..n}.
func AllProcs(n int) ProcSet { return procset.FullSet(n) }

// Sij identifies the system S^i_{j,n}: n processes with at least one set of
// size i timely with respect to at least one set of size j.
func Sij(i, j, n int) SystemID { return core.Sij(i, j, n) }

// NewProblem identifies (t,k,n)-agreement.
func NewProblem(t, k, n int) Problem { return core.Problem{T: t, K: k, N: n} }

// IsTimely reports Definition 1 on a finite schedule: every window of s
// containing bound steps of processes in q contains a step of a process in
// p.
func IsTimely(s Schedule, p, q ProcSet, bound int) bool { return sched.IsTimely(s, p, q, bound) }

// MinBound returns the smallest bound with which p is timely with respect
// to q in s.
func MinBound(s Schedule, p, q ProcSet) int { return sched.MinBound(s, p, q) }

// ParseSchedule parses "p1 p3 p1" (or bare ids "1 3 1").
func ParseSchedule(text string) (Schedule, error) { return sched.Parse(text) }

// Figure1Prefix builds the first rounds of the paper's Figure 1 schedule
// S = [(p1·q)^i (p2·q)^i].
func Figure1Prefix(p1, p2, q ProcID, rounds int) Schedule {
	return sched.Figure1Prefix(p1, p2, q, rounds)
}

// Solvable answers the paper's main question (Theorem 27): is
// (t,k,n)-agreement solvable in S^i_{j,n}?
func Solvable(t, k, n, i, j int) (bool, error) {
	return core.Problem{T: t, K: k, N: n}.SolvableIn(core.Sij(i, j, n))
}

// MatchingSystem returns S^k_{t+1,n}, the weakest system of the family in
// which (t,k,n)-agreement is solvable (Theorems 24 and 27).
func MatchingSystem(t, k, n int) SystemID {
	return core.Problem{T: t, K: k, N: n}.MatchingSystem()
}

// SolveConfig configures a simulated agreement run.
type SolveConfig struct {
	// Problem is the (t,k,n)-agreement instance to solve.
	Problem Problem
	// System selects the S^i_{j,n} schedule generator; the zero value means
	// the problem's matching system.
	System SystemID
	// Proposals maps processes to initial values; nil means "v<p>".
	Proposals map[ProcID]any
	// Crashes maps processes to the number of steps they take before
	// crashing. At most Problem.T crashes keep the termination guarantee.
	Crashes map[ProcID]int
	// Seed makes the run reproducible.
	Seed int64
	// MaxSteps bounds the run; 0 means a generous default.
	MaxSteps int
	// TimelinessBound is the Definition 1 constant enforced by the schedule
	// generator; 0 means 4.
	TimelinessBound int
}

// SolveResult reports a simulated agreement run.
type SolveResult struct {
	// Decided reports whether every correct process decided in budget.
	Decided bool
	// Decisions maps deciders to their decided values.
	Decisions map[ProcID]any
	// Distinct is the number of distinct decided values (≤ k on success).
	Distinct int
	// Steps is the number of executed steps.
	Steps int
	// Correct is the set of processes correct in the generated schedule.
	Correct ProcSet
}

// solve is the register-plane agreement run behind the Solve entry point.
func solve(ctx context.Context, cfg SolveConfig) (SolveResult, error) {
	var out SolveResult
	p := cfg.Problem
	sys := cfg.System
	if sys == (SystemID{}) {
		sys = p.MatchingSystem()
	}
	kcfg, err := p.AgreementConfig(sys)
	if err != nil {
		return out, err
	}
	bound := cfg.TimelinessBound
	if bound == 0 {
		bound = 4
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 4_000_000
	}
	proposals := cfg.Proposals
	if proposals == nil {
		proposals = make(map[ProcID]any, p.N)
		for q := 1; q <= p.N; q++ {
			proposals[ProcID(q)] = fmt.Sprintf("v%d", q)
		}
	}
	for q := 1; q <= p.N; q++ {
		if proposals[ProcID(q)] == nil {
			return out, fmt.Errorf("settimeliness: missing proposal for p%d", q)
		}
	}

	var src sched.Source
	if kcfg.UsesTrivialAlgorithm() {
		src, err = sched.Random(p.N, cfg.Seed, cfg.Crashes)
	} else {
		src, _, err = sched.System(p.N, sys.I, sys.J, bound, cfg.Seed, cfg.Crashes)
	}
	if err != nil {
		return out, err
	}

	ag, err := kset.New(kcfg, nil)
	if err != nil {
		return out, err
	}
	runner, err := sim.NewRunner(sim.Config{
		N:       p.N,
		Machine: ag.Machine(func(q ProcID) any { return proposals[q] }),
	})
	if err != nil {
		return out, err
	}
	defer runner.Close()

	correct := src.Correct()
	res := runner.Run(src, maxSteps, 200, func() bool {
		return ctx.Err() != nil || correct.SubsetOf(ag.DecidedSet())
	})
	if err := ctx.Err(); err != nil {
		return out, err
	}

	out.Decided = res.Stopped
	out.Steps = runner.Steps()
	out.Correct = correct
	out.Distinct = ag.DistinctDecisions()
	out.Decisions = make(map[ProcID]any)
	for q := 1; q <= p.N; q++ {
		if v, ok := ag.Decision(ProcID(q)); ok {
			out.Decisions[ProcID(q)] = v
		}
	}
	run := check.AgreementRun{
		N: p.N, K: p.K, T: p.T,
		Proposals: proposals,
		Decisions: out.Decisions,
		Correct:   correct,
	}
	if len(cfg.Crashes) <= p.T && !out.Decided {
		return out, fmt.Errorf("settimeliness: run did not decide within %d steps", maxSteps)
	}
	if err := run.Verify(); err != nil {
		return out, err
	}
	return out, nil
}

// DetectorConfig configures a standalone Figure 2 run.
type DetectorConfig struct {
	// N, K, T parameterize t-resilient k-anti-Ω.
	N, K, T int
	// Crashes, Seed, MaxSteps, TimelinessBound as in SolveConfig.
	Crashes         map[ProcID]int
	Seed            int64
	MaxSteps        int
	TimelinessBound int
}

// DetectorResult reports a standalone Figure 2 run.
type DetectorResult struct {
	// Stable reports whether the correct processes converged to a common
	// winnerset within the budget.
	Stable bool
	// Winnerset is the stable common winnerset (the paper's A0).
	Winnerset ProcSet
	// Witness is a correct process eventually excluded from every correct
	// process's detector output.
	Witness ProcID
	// StableFrom is the step from which the witness was never output again.
	StableFrom int
	// Steps is the number of executed steps.
	Steps int
}

// runDetector is the register-plane Figure 2 run behind the RunDetector
// entry point.
func runDetector(ctx context.Context, cfg DetectorConfig) (DetectorResult, error) {
	var out DetectorResult
	acfg := antiomega.Config{N: cfg.N, K: cfg.K, T: cfg.T}
	if err := acfg.Validate(); err != nil {
		return out, err
	}
	bound := cfg.TimelinessBound
	if bound == 0 {
		bound = 4
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 2_000_000
	}
	src, _, err := sched.System(cfg.N, cfg.K, cfg.T+1, bound, cfg.Seed, cfg.Crashes)
	if err != nil {
		return out, err
	}

	hist := fd.NewHistory(cfg.N)
	var runner *sim.Runner
	det, err := antiomega.NewDetector(acfg, func(p ProcID, set ProcSet) {
		hist.Record(runner.Steps(), p, set)
	})
	if err != nil {
		return out, err
	}
	// The direct-dispatch machine path: equivalent to the coroutine form
	// (pinned by the antiomega machine tests) and an order of magnitude
	// faster per step.
	runner, err = sim.NewRunner(sim.Config{N: cfg.N, Machine: det.Machine})
	if err != nil {
		return out, err
	}
	defer runner.Close()

	correct := src.Correct()
	streak := 0
	var last ProcSet
	res := runner.Run(src, maxSteps, 500, func() bool {
		if ctx.Err() != nil {
			return true
		}
		w, ok := det.StableWinnerset(correct)
		if !ok {
			streak = 0
			return false
		}
		if w == last {
			streak++
		} else {
			last, streak = w, 1
		}
		return streak >= 20
	})
	if err := ctx.Err(); err != nil {
		return out, err
	}
	out.Stable = res.Stopped
	out.Steps = runner.Steps()
	if w, ok := det.StableWinnerset(correct); ok {
		out.Winnerset = w
	}
	verdict := hist.Check(cfg.K, correct)
	if verdict.Holds {
		out.Witness = verdict.Witness
		out.StableFrom = verdict.StableFrom
	} else if out.Stable {
		return out, fmt.Errorf("settimeliness: detector stabilized but property check failed: %s", verdict.Reason)
	}
	return out, nil
}
